package core

import (
	"math/rand"
	"testing"

	"repro/internal/assoctree"
	"repro/internal/expr"
	"repro/internal/hypergraph"
	"repro/internal/plan"
)

// q4Plan rebuilds Example 3.2's query.
func q4Plan() plan.Node {
	p12 := eqX("r1", "r2")
	p24 := eqX("r2", "r4")
	p25 := eqY("r2", "r5")
	p45 := eqX("r4", "r5")
	p35 := eqY("r3", "r5")
	inner := plan.NewJoin(plan.InnerJoin, p35,
		plan.NewJoin(plan.InnerJoin, p45, plan.NewScan("r4"), plan.NewScan("r5")),
		plan.NewScan("r3"))
	mid := plan.NewJoin(plan.LeftJoin, expr.And(p24, p25), plan.NewScan("r2"), inner)
	return plan.NewJoin(plan.LeftJoin, p12, plan.NewScan("r1"), mid)
}

// TestAssignOperatorsQ4AllTrees is the Section 4 integration test:
// for EVERY Definition 3.2 association tree of Q4, operator
// assignment produces an expression tree equivalent to the original
// query — verified by execution on randomized databases.
func TestAssignOperatorsQ4AllTrees(t *testing.T) {
	q := q4Plan()
	h, err := hypergraph.FromPlan(q)
	if err != nil {
		t.Fatal(err)
	}
	enum, err := assoctree.NewEnumerator(h, hypergraph.Broken)
	if err != nil {
		t.Fatal(err)
	}
	trees := enum.Trees(0)
	if len(trees) < 10 {
		t.Fatalf("expected the full broken-mode tree space, got %d", len(trees))
	}
	rng := rand.New(rand.NewSource(44))
	assigned := 0
	for _, tr := range trees {
		node, err := AssignOperators(h, tr)
		if err != nil {
			t.Fatalf("tree %s: %v", tr, err)
		}
		assigned++
		for trial := 0; trial < 8; trial++ {
			db := randDB(rng, 4, 3, "r1", "r2", "r3", "r4", "r5")
			mustEquivalent(t, q, node, db, "Q4 assignment for tree "+tr.String())
		}
	}
	if assigned != len(trees) {
		t.Errorf("assigned %d of %d trees", assigned, len(trees))
	}
}

// TestAssignOperatorsQuery2 checks all trees of the Query 2 shape.
func TestAssignOperatorsQuery2(t *testing.T) {
	q := query2()
	h, err := hypergraph.FromPlan(q)
	if err != nil {
		t.Fatal(err)
	}
	enum, err := assoctree.NewEnumerator(h, hypergraph.Broken)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(45))
	for _, tr := range enum.Trees(0) {
		node, err := AssignOperators(h, tr)
		if err != nil {
			t.Fatalf("tree %s: %v", tr, err)
		}
		for trial := 0; trial < 10; trial++ {
			db := randDB(rng, 5, 3, "r1", "r2", "r3")
			mustEquivalent(t, q, node, db, "Query 2 assignment for tree "+tr.String())
		}
	}
}

// TestAssignOperatorsInnerChain: pure join chains assign to pure join
// trees with no compensation.
func TestAssignOperatorsInnerChain(t *testing.T) {
	q := plan.NewJoin(plan.InnerJoin, eqY("r2", "r3"),
		plan.NewJoin(plan.InnerJoin, eqX("r1", "r2"), plan.NewScan("r1"), plan.NewScan("r2")),
		plan.NewScan("r3"))
	h, err := hypergraph.FromPlan(q)
	if err != nil {
		t.Fatal(err)
	}
	enum, err := assoctree.NewEnumerator(h, hypergraph.Broken)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(46))
	for _, tr := range enum.Trees(0) {
		node, err := AssignOperators(h, tr)
		if err != nil {
			t.Fatal(err)
		}
		plan.Walk(node, func(m plan.Node) {
			switch m.(type) {
			case *plan.GenSel, *plan.MGOJNode:
				t.Errorf("tree %s: inner-join query should need no compensation:\n%s", tr, plan.Indent(node))
			case *plan.Join:
				if m.(*plan.Join).Kind != plan.InnerJoin {
					t.Errorf("tree %s: unexpected outer join", tr)
				}
			}
		})
		for trial := 0; trial < 8; trial++ {
			db := randDB(rng, 5, 3, "r1", "r2", "r3")
			mustEquivalent(t, q, node, db, "chain assignment")
		}
	}
}

// TestAssignOperatorsMatchesPaperQ4Prime pins the structure of the
// paper's Q4' construction: the tree (r1.((r2.r4).(r5.r3))) yields an
// MGOJ preserving the r2-part and a top-level σ* for the deferred
// p25, as in Section 3's worked derivation.
func TestAssignOperatorsMatchesPaperQ4Prime(t *testing.T) {
	q := q4Plan()
	h, err := hypergraph.FromPlan(q)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := assoctree.ParseTree("(r1.((r2.r4).(r5.r3)))")
	if err != nil {
		t.Fatal(err)
	}
	node, err := AssignOperators(h, tr)
	if err != nil {
		t.Fatal(err)
	}
	gs, ok := node.(*plan.GenSel)
	if !ok {
		t.Fatalf("expected a top-level generalized selection:\n%s", plan.Indent(node))
	}
	if len(gs.Preserved) != 1 || gs.Preserved[0].String() != "r1r2" {
		t.Errorf("σ* preserved = %v, want [r1r2] (the paper's σ*_{p2,5}[r1,r2])", gs.Preserved)
	}
	foundMGOJ := false
	plan.Walk(node, func(m plan.Node) {
		if mg, ok := m.(*plan.MGOJNode); ok {
			foundMGOJ = true
			if len(mg.Preserved) != 1 || mg.Preserved[0].String() != "r2" {
				t.Errorf("MGOJ preserved = %v, want [r2] (the r1r2-part in scope)", mg.Preserved)
			}
		}
	})
	if !foundMGOJ {
		t.Errorf("expected the paper's MGOJ node:\n%s", plan.Indent(node))
	}
}
