package core

import (
	"fmt"
	"runtime"
	"testing"

	"repro/internal/expr"
	"repro/internal/plan"
)

// chainQ is an n-relation left-outer-join chain whose final edge
// carries a complex predicate referencing r1 (the
// experiments.ChainQuery shape); n=7 exceeds a 10000-plan cap.
func chainQ(n int) plan.Node {
	rel := func(i int) string { return fmt.Sprintf("r%d", i) }
	var node plan.Node = plan.NewScan(rel(1))
	for i := 2; i < n; i++ {
		node = plan.NewJoin(plan.LeftJoin, expr.EqCols(rel(i-1), "x", rel(i), "x"),
			node, plan.NewScan(rel(i)))
	}
	last := expr.And(
		expr.EqCols(rel(1), "y", rel(n), "y"),
		expr.EqCols(rel(n-1), "x", rel(n), "x"),
	)
	return plan.NewJoin(plan.LeftJoin, last, node, plan.NewScan(rel(n)))
}

func benchSaturate(b *testing.B, q plan.Node, maxPlans int) {
	b.Run("serial", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			Saturate(q, SaturateOptions{MaxPlans: maxPlans, Workers: 1})
		}
	})
	b.Run(fmt.Sprintf("workers=%d", runtime.GOMAXPROCS(0)), func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			Saturate(q, SaturateOptions{MaxPlans: maxPlans, Workers: -1})
		}
	})
}

// BenchmarkSaturateQ5 enumerates Q5's full closure (2752 plans) under
// a 10000-plan cap; the seed implementation took 204.7ms and 1.49M
// allocations per run (BENCH_optimizer.json records the history).
func BenchmarkSaturateQ5(b *testing.B) {
	benchSaturate(b, q5(), 10000)
}

// BenchmarkSaturateChain7 runs the 7-relation chain, which hits the
// 10000-plan cap mid-enumeration — the capped regime large queries
// live in.
func BenchmarkSaturateChain7(b *testing.B) {
	benchSaturate(b, chainQ(7), 10000)
}
