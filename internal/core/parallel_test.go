package core

import (
	"math/rand"
	"testing"

	"repro/internal/expr"
	"repro/internal/obs"
	"repro/internal/plan"
	"repro/internal/schema"
	"repro/internal/simplify"
	"repro/internal/value"
)

// q1 is the paper's Section 1.1 Query 1 shape: an aggregated view
// under an outer join whose predicate references the aggregate,
// topped by a filtering inner join (the query that motivates
// group-by push-up).
func q1() plan.Node {
	v1 := plan.NewGroupBy(
		[]schema.Attribute{schema.Attr("r1", "x"), schema.Attr("r2", "y")},
		nil,
		plan.NewJoin(plan.InnerJoin, eqX("r1", "r2"),
			plan.NewScan("r1"), plan.NewScan("r2")))
	loj := plan.NewJoin(plan.LeftJoin,
		expr.Cmp{Op: value.GE, L: expr.Column("r3", "x"), R: expr.Column("r1", "x")},
		v1, plan.NewScan("r3"))
	return plan.NewJoin(plan.InnerJoin, eqY("r4", "r2"), loj, plan.NewScan("r4"))
}

// assertSameSaturation saturates q serially and with the given worker
// counts and asserts the runs are indistinguishable: same plan
// sequence (by fingerprint), same derivation trace, same chains.
func assertSameSaturation(t *testing.T, name string, q plan.Node, maxPlans int, workerCounts ...int) {
	t.Helper()
	wantPlans, wantTrace := SaturateTraced(q, SaturateOptions{MaxPlans: maxPlans, Workers: 1})
	wantKeys := make([]string, len(wantPlans))
	for i, p := range wantPlans {
		wantKeys[i] = plan.Key(p)
	}
	for _, w := range workerCounts {
		gotPlans, gotTrace := SaturateTraced(q, SaturateOptions{MaxPlans: maxPlans, Workers: w})
		if len(gotPlans) != len(wantPlans) {
			t.Fatalf("%s workers=%d: %d plans, serial %d", name, w, len(gotPlans), len(wantPlans))
		}
		for i, p := range gotPlans {
			if plan.Key(p) != wantKeys[i] {
				t.Fatalf("%s workers=%d: plan %d differs\n got: %s\nwant: %s",
					name, w, i, plan.Key(p), wantKeys[i])
			}
		}
		if len(gotTrace) != len(wantTrace) {
			t.Fatalf("%s workers=%d: trace size %d, serial %d", name, w, len(gotTrace), len(wantTrace))
		}
		for key, d := range wantTrace {
			if gotTrace[key] != d {
				t.Fatalf("%s workers=%d: derivation of %s differs: got %+v want %+v",
					name, w, key, gotTrace[key], d)
			}
		}
		// Every non-root plan must have a valid chain back to the root,
		// and the chains must match the serial ones step for step.
		for i, p := range gotPlans {
			got := DerivationChain(gotTrace, plan.Key(p))
			want := DerivationChain(wantTrace, wantKeys[i])
			if i > 0 && len(got) == 0 {
				t.Fatalf("%s workers=%d: plan %d has no derivation chain", name, w, i)
			}
			if len(got) != len(want) {
				t.Fatalf("%s workers=%d: chain length of plan %d differs", name, w, i)
			}
			for j := range got {
				if got[j] != want[j] {
					t.Fatalf("%s workers=%d: chain of plan %d differs at %d: %s vs %s",
						name, w, i, j, got[j], want[j])
				}
			}
		}
	}
}

// TestParallelSaturationEquivalence is the determinism property on
// the paper's queries: saturation with N workers returns exactly the
// serial plan sequence and trace. Run under -race (make race) it also
// proves the worker pool is race-clean.
func TestParallelSaturationEquivalence(t *testing.T) {
	assertSameSaturation(t, "Q1", q1(), 4000, 2, 4, 8)
	assertSameSaturation(t, "Q5", q5(), 4000, 2, 4, 8)
	assertSameSaturation(t, "Q6", simplify.Simplify(q6()), 4000, 2, 4, 8)
}

// TestParallelSaturationEquivalenceFuzz extends the property to
// random query shapes, including capped runs (small MaxPlans stops
// enumeration mid-wave, which must truncate at exactly the same
// prefix as the serial engine).
func TestParallelSaturationEquivalenceFuzz(t *testing.T) {
	rng := rand.New(rand.NewSource(20260805))
	queries := 25
	if testing.Short() {
		queries = 6
	}
	for qi := 0; qi < queries; qi++ {
		n := 3 + rng.Intn(3)
		rels := make([]string, n)
		for i := range rels {
			rels[i] = relNames[i]
		}
		q := simplify.Simplify(randomQuery(rng, rels))
		maxPlans := []int{50, 400, 100000}[rng.Intn(3)]
		assertSameSaturation(t, q.String(), q, maxPlans, 2, 5)
	}
}

// TestParallelSaturationCounters pins the enumeration accounting: an
// uncapped parallel run reports the same rule_applied, rule_admitted,
// dedup_hits and plans_admitted totals as the serial run.
func TestParallelSaturationCounters(t *testing.T) {
	q := q5()
	counts := func(workers int) map[string]int64 {
		reg := obs.NewRegistry()
		Saturate(q, SaturateOptions{MaxPlans: 100000, Workers: workers, Obs: reg})
		out := make(map[string]int64)
		for name, v := range reg.Snapshot().Counters {
			out[name] = v
		}
		return out
	}
	serial, par := counts(1), counts(4)
	for _, name := range []string{
		"optimizer.rule_applied.commute",
		"optimizer.rule_applied.split",
		"optimizer.rule_admitted.commute",
		"optimizer.dedup_hits",
		"optimizer.plans_admitted",
	} {
		if serial[name] != par[name] {
			t.Errorf("%s: serial %d, parallel %d", name, serial[name], par[name])
		}
	}
	if par["optimizer.saturate.waves"] == 0 {
		t.Error("parallel run should report its wave count")
	}
}

// TestSaturateWorkersDefault pins the Workers contract: 0 and 1 are
// the serial engine, negative means GOMAXPROCS.
func TestSaturateWorkersDefault(t *testing.T) {
	q := q5()
	serial := Saturate(q, SaturateOptions{MaxPlans: 500})
	auto := Saturate(q, SaturateOptions{MaxPlans: 500, Workers: -1})
	if len(serial) != len(auto) {
		t.Fatalf("Workers:-1 returned %d plans, default %d", len(auto), len(serial))
	}
	for i := range serial {
		if plan.Key(serial[i]) != plan.Key(auto[i]) {
			t.Fatalf("Workers:-1 plan %d differs from default", i)
		}
	}
}
