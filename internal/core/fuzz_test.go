package core

import (
	"math/rand"
	"testing"

	"repro/internal/assoctree"
	"repro/internal/hypergraph"

	"repro/internal/expr"
	"repro/internal/plan"
	"repro/internal/simplify"
	"repro/internal/value"
)

// randomQuery builds a random join tree over rels: random shape,
// random operator kinds, random 1–2-conjunct predicates connecting
// the two operand subtrees (so hypergraph construction always
// succeeds). This is the adversarial input generator for the
// whole-engine soundness fuzz test.
func randomQuery(rng *rand.Rand, rels []string) plan.Node {
	if len(rels) == 1 {
		return plan.NewScan(rels[0])
	}
	cut := 1 + rng.Intn(len(rels)-1)
	perm := rng.Perm(len(rels))
	var lRels, rRels []string
	for i, p := range perm {
		if i < cut {
			lRels = append(lRels, rels[p])
		} else {
			rRels = append(rRels, rels[p])
		}
	}
	l := randomQuery(rng, lRels)
	r := randomQuery(rng, rRels)

	atom := func() expr.Pred {
		lr := lRels[rng.Intn(len(lRels))]
		rr := rRels[rng.Intn(len(rRels))]
		cols := []string{"x", "y"}
		lc, rc := cols[rng.Intn(2)], cols[rng.Intn(2)]
		ops := []value.CmpOp{value.EQ, value.EQ, value.EQ, value.LE, value.NE}
		return expr.Cmp{Op: ops[rng.Intn(len(ops))], L: expr.Column(lr, lc), R: expr.Column(rr, rc)}
	}
	pred := atom()
	if rng.Intn(2) == 0 {
		pred = expr.And(pred, atom())
	}
	kinds := []plan.JoinKind{plan.InnerJoin, plan.InnerJoin, plan.LeftJoin, plan.LeftJoin, plan.RightJoin, plan.FullJoin}
	return plan.NewJoin(kinds[rng.Intn(len(kinds))], pred, l, r)
}

// TestSaturationFuzz is the whole-engine soundness net: for random
// query shapes over 3–5 relations, every plan in the saturated
// equivalence class must evaluate to the original query's result on
// random databases. Any unsound rewrite rule, compensation spec or
// executor bug surfaces here.
func TestSaturationFuzz(t *testing.T) {
	rng := rand.New(rand.NewSource(20240705))
	queries := 40
	if testing.Short() {
		queries = 8
	}
	for qi := 0; qi < queries; qi++ {
		n := 3 + rng.Intn(3)
		rels := make([]string, n)
		for i := range rels {
			rels[i] = relNames[i]
		}
		// The paper's machinery assumes simple queries; simplification
		// is itself an identity, so fuzz over the simplified form.
		q := simplify.Simplify(randomQuery(rng, rels))
		plans := Saturate(q, SaturateOptions{MaxPlans: 120})
		for trial := 0; trial < 3; trial++ {
			db := randDB(rng, 5, 3, relNames...)
			want, err := q.Eval(db)
			if err != nil {
				t.Fatalf("query %d (%s): %v", qi, q, err)
			}
			for _, p := range plans {
				got, err := p.Eval(db)
				if err != nil {
					t.Fatalf("query %d plan %s: %v", qi, p, err)
				}
				if !got.EqualAsSets(want) {
					t.Fatalf("UNSOUND REWRITE\nquery %d: %s\nplan: %s\ngot:\n%s\nwant:\n%s",
						qi, q, p, got.Format(true), want.Format(true))
				}
			}
		}
	}
}

var relNames = []string{"r1", "r2", "r3", "r4", "r5"}

// TestAssignOperatorsFuzz does the same for the association-tree
// path: for random queries, every assignable tree must yield an
// equivalent expression tree (trees rejected by the separation
// precondition are skipped).
func TestAssignOperatorsFuzz(t *testing.T) {
	rng := rand.New(rand.NewSource(5071996))
	queries := 25
	if testing.Short() {
		queries = 5
	}
	checked := 0
	for qi := 0; qi < queries; qi++ {
		n := 3 + rng.Intn(2)
		rels := make([]string, n)
		for i := range rels {
			rels[i] = relNames[i]
		}
		q := simplify.Simplify(randomQuery(rng, rels))
		h, err := hypergraphOf(q)
		if err != nil {
			continue
		}
		enum, err := enumeratorOf(h)
		if err != nil {
			continue
		}
		for _, tr := range enum.Trees(40) {
			node, err := AssignOperators(h, tr)
			if err != nil {
				continue // separation precondition or unsupported shape
			}
			checked++
			for trial := 0; trial < 2; trial++ {
				db := randDB(rng, 4, 3, relNames...)
				ok, err := plan.Equivalent(q, node, db)
				if err != nil {
					t.Fatalf("query %d tree %s: %v", qi, tr, err)
				}
				if !ok {
					t.Fatalf("UNSOUND ASSIGNMENT\nquery %d: %s\ntree: %s\nplan:\n%s",
						qi, q, tr, plan.Indent(node))
				}
			}
		}
	}
	if checked < 50 {
		t.Errorf("only %d tree assignments checked; generator too restrictive", checked)
	}
}

// helpers keeping the fuzz file self-contained.
func hypergraphOf(q plan.Node) (*hypergraph.Hypergraph, error) { return hypergraph.FromPlan(q) }

func enumeratorOf(h *hypergraph.Hypergraph) (*assoctree.Enumerator, error) {
	return assoctree.NewEnumerator(h, hypergraph.Broken)
}
