package core

import (
	"math/rand"
	"testing"

	"repro/internal/expr"
	"repro/internal/plan"
	"repro/internal/relation"
	"repro/internal/schema"
	"repro/internal/value"
)

// section11Query builds the Section 1.1 join-aggregate query
//
//	Select r1.a From r1
//	Where r1.b θ1 (Select count(*) From r2
//	               Where r2.c = r1.c and r2.d θ2 (Select count(*) From r3
//	                                              Where r2.e = r3.e and r1.f = r3.f))
//
// over relations r1(a,b,c,f), r2(c,d,e), r3(e,f).
func section11Query(op1, op2 value.CmpOp) *JoinAggregateQuery {
	return &JoinAggregateQuery{
		Rel:  "r1",
		Proj: []schema.Attribute{schema.Attr("r1", "a")},
		Filters: []CountFilter{{
			LHS: expr.Column("r1", "b"),
			Op:  op1,
			Sub: &CountQuery{
				Rel:  "r2",
				Corr: expr.EqCols("r2", "c", "r1", "c"),
				Filters: []CountFilter{{
					LHS: expr.Column("r2", "d"),
					Op:  op2,
					Sub: &CountQuery{
						Rel: "r3",
						Corr: expr.And(
							expr.EqCols("r2", "e", "r3", "e"),
							expr.EqCols("r1", "f", "r3", "f"),
						),
					},
				}},
			},
		}},
	}
}

// joinAggDB builds random relations matching section11Query's shape.
// Column values are small so correlations, zero counts and duplicate
// counts all occur.
func newBuilder(name string, cols []string) *relation.Builder {
	return relation.NewBuilder(name, cols...)
}

func joinAggDB(rng *rand.Rand, maxRows int) plan.Database {
	db := make(plan.Database)
	build := func(name string, cols []string) {
		b := newBuilder(name, cols)
		n := rng.Intn(maxRows + 1)
		for i := 0; i < n; i++ {
			vals := make([]value.Value, len(cols))
			for j := range cols {
				if rng.Intn(10) == 0 {
					vals[j] = value.Null
				} else {
					vals[j] = value.NewInt(int64(rng.Intn(3)))
				}
			}
			b.Row(vals...)
		}
		db[name] = b.Relation()
	}
	build("r1", []string{"a", "b", "c", "f"})
	build("r2", []string{"c", "d", "e"})
	build("r3", []string{"e", "f"})
	return db
}

// TestUnnestMatchesTIS is experiment E8's correctness half: the
// unnested outer-join + group-by + generalized-selection plan
// computes exactly what tuple iteration semantics computes, for every
// comparison operator — including the count-bug cases where a
// comparison succeeds against a zero count.
func TestUnnestMatchesTIS(t *testing.T) {
	ops := []value.CmpOp{value.EQ, value.NE, value.LT, value.LE, value.GT, value.GE}
	rng := rand.New(rand.NewSource(87))
	for _, op1 := range ops {
		for _, op2 := range ops {
			q := section11Query(op1, op2)
			db := joinAggDB(rng, 6)
			unnested, err := q.Unnest(db)
			if err != nil {
				t.Fatal(err)
			}
			want, err := q.TIS(db)
			if err != nil {
				t.Fatal(err)
			}
			got, err := unnested.Eval(db)
			if err != nil {
				t.Fatalf("θ1=%s θ2=%s: %v", op1, op2, err)
			}
			if !got.EqualAsMultisets(want) {
				t.Errorf("θ1=%s θ2=%s: unnested plan differs from TIS\ngot:\n%s\nwant:\n%s\nplan:\n%s",
					op1, op2, got, want, plan.Indent(unnested))
			}
		}
	}
}

// TestUnnestCountBug pins the classic count bug directly: an outer
// tuple with zero matches must survive a "= 0" comparison.
func TestUnnestCountBug(t *testing.T) {
	db := plan.Database{
		"r1": newBuilder("r1", []string{"a", "b", "c", "f"}).
			Row(value.NewInt(100), value.NewInt(0), value.NewInt(1), value.NewInt(1)).
			Relation(),
		"r2": newBuilder("r2", []string{"c", "d", "e"}).
			Row(value.NewInt(9), value.NewInt(9), value.NewInt(9)). // matches nothing
			Relation(),
		"r3": newBuilder("r3", []string{"e", "f"}).Relation(),
	}
	q := section11Query(value.EQ, value.EQ) // r1.b = count(...) with b = 0
	want, err := q.TIS(db)
	if err != nil {
		t.Fatal(err)
	}
	if want.Len() != 1 {
		t.Fatalf("TIS should keep the zero-count tuple, got %d rows", want.Len())
	}
	unnested, err := q.Unnest(db)
	if err != nil {
		t.Fatal(err)
	}
	got, err := unnested.Eval(db)
	if err != nil {
		t.Fatal(err)
	}
	if !got.EqualAsMultisets(want) {
		t.Fatalf("count bug: unnested plan lost the zero-count tuple\ngot:\n%s\nplan:\n%s", got, plan.Indent(unnested))
	}
}

// TestUnnestIntermediateCountBug exercises the middle level: r1 rows
// all of whose r2 partners fail the inner θ2 filter must still be
// counted with c2 = 0 — this is where the generalized selection's
// preservation earns its keep.
func TestUnnestIntermediateCountBug(t *testing.T) {
	// r2 matches r1 on c, but its count of r3 (= 1) fails d = 0.
	db := plan.Database{
		"r1": newBuilder("r1", []string{"a", "b", "c", "f"}).
			Row(value.NewInt(100), value.NewInt(0), value.NewInt(1), value.NewInt(1)).
			Relation(),
		"r2": newBuilder("r2", []string{"c", "d", "e"}).
			Row(value.NewInt(1), value.NewInt(0), value.NewInt(5)).
			Relation(),
		"r3": newBuilder("r3", []string{"e", "f"}).
			Row(value.NewInt(5), value.NewInt(1)).
			Relation(),
	}
	// θ2 is d = count(r3): 0 = 1 fails, so r1's surviving-r2 count is
	// 0; θ1 is b = count(r2): 0 = 0 holds → r1 survives.
	q := section11Query(value.EQ, value.EQ)
	want, err := q.TIS(db)
	if err != nil {
		t.Fatal(err)
	}
	if want.Len() != 1 {
		t.Fatalf("TIS should keep r1 (all partners fail θ2), got %d rows", want.Len())
	}
	unnested, err := q.Unnest(db)
	if err != nil {
		t.Fatal(err)
	}
	// The plan must contain a generalized selection preserving r1.
	foundGS := false
	plan.Walk(unnested, func(n plan.Node) {
		if gs, ok := n.(*plan.GenSel); ok {
			if len(gs.Preserved) == 1 && gs.Preserved[0].String() == "r1" {
				foundGS = true
			}
		}
	})
	if !foundGS {
		t.Errorf("unnested plan should contain σ*[r1]:\n%s", plan.Indent(unnested))
	}
	got, err := unnested.Eval(db)
	if err != nil {
		t.Fatal(err)
	}
	if !got.EqualAsMultisets(want) {
		t.Fatalf("intermediate count bug\ngot:\n%s\nwant:\n%s\nplan:\n%s", got, want, plan.Indent(unnested))
	}
}

// TestUnnestSingleLevel checks the one-subquery form (Query 1's
// simpler cousin).
func TestUnnestSingleLevel(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, op := range []value.CmpOp{value.EQ, value.GE, value.LT} {
		q := &JoinAggregateQuery{
			Rel:  "r1",
			Proj: []schema.Attribute{schema.Attr("r1", "a")},
			Filters: []CountFilter{{
				LHS: expr.Column("r1", "b"),
				Op:  op,
				Sub: &CountQuery{Rel: "r2", Corr: expr.EqCols("r2", "c", "r1", "c")},
			}},
		}
		for trial := 0; trial < 20; trial++ {
			db := joinAggDB(rng, 5)
			unnested, err := q.Unnest(db)
			if err != nil {
				t.Fatal(err)
			}
			want, err := q.TIS(db)
			if err != nil {
				t.Fatal(err)
			}
			got, err := unnested.Eval(db)
			if err != nil {
				t.Fatal(err)
			}
			if !got.EqualAsMultisets(want) {
				t.Fatalf("op %s trial %d: mismatch\ngot:\n%s\nwant:\n%s", op, trial, got, want)
			}
		}
	}
}

// TestUnnestMultipleFilters exercises the generalized (non-chain)
// unnesting: two independent correlated COUNT subqueries on the outer
// block, and a block with two nested filters.
func TestUnnestMultipleFilters(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	twoTop := &JoinAggregateQuery{
		Rel:  "r1",
		Proj: []schema.Attribute{schema.Attr("r1", "a")},
		Filters: []CountFilter{
			{
				LHS: expr.Column("r1", "b"),
				Op:  value.GE,
				Sub: &CountQuery{Rel: "r2", Corr: expr.EqCols("r2", "c", "r1", "c")},
			},
			{
				LHS: expr.Column("r1", "c"),
				Op:  value.LE,
				Sub: &CountQuery{Rel: "r3", Corr: expr.EqCols("r3", "f", "r1", "f")},
			},
		},
	}
	twoNested := &JoinAggregateQuery{
		Rel:  "r1",
		Proj: []schema.Attribute{schema.Attr("r1", "a")},
		Filters: []CountFilter{{
			LHS: expr.Column("r1", "b"),
			Op:  value.GE,
			Sub: &CountQuery{
				Rel:  "r2",
				Corr: expr.EqCols("r2", "c", "r1", "c"),
				Filters: []CountFilter{
					{
						LHS: expr.Column("r2", "d"),
						Op:  value.GE,
						Sub: &CountQuery{Rel: "r3", Corr: expr.EqCols("r2", "e", "r3", "e")},
					},
					{
						LHS: expr.Column("r2", "e"),
						Op:  value.NE,
						Sub: &CountQuery{Rel: "r4", Corr: expr.EqCols("r4", "g", "r2", "d")},
					},
				},
			},
		}},
	}
	for name, q := range map[string]*JoinAggregateQuery{"two-top": twoTop, "two-nested": twoNested} {
		for trial := 0; trial < 30; trial++ {
			db := joinAggDB(rng, 6)
			db["r4"] = newBuilder("r4", []string{"g"}).
				Row(value.NewInt(int64(rng.Intn(3)))).
				Row(value.NewInt(int64(rng.Intn(3)))).
				Relation()
			unnested, err := q.Unnest(db)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			want, err := q.TIS(db)
			if err != nil {
				t.Fatal(err)
			}
			got, err := unnested.Eval(db)
			if err != nil {
				t.Fatal(err)
			}
			if !got.EqualAsMultisets(want) {
				t.Fatalf("%s trial %d: mismatch\ngot:\n%s\nwant:\n%s\nplan:\n%s",
					name, trial, got, want, plan.Indent(unnested))
			}
		}
	}
}

// TestUnnestDepthThree: a four-relation chain of correlated counts.
func TestUnnestDepthThree(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	q := &JoinAggregateQuery{
		Rel:  "r1",
		Proj: []schema.Attribute{schema.Attr("r1", "a")},
		Filters: []CountFilter{{
			LHS: expr.Column("r1", "b"),
			Op:  value.GE,
			Sub: &CountQuery{
				Rel:  "r2",
				Corr: expr.EqCols("r2", "c", "r1", "c"),
				Filters: []CountFilter{{
					LHS: expr.Column("r2", "d"),
					Op:  value.GE,
					Sub: &CountQuery{
						Rel:  "r3",
						Corr: expr.EqCols("r2", "e", "r3", "e"),
						Filters: []CountFilter{{
							LHS: expr.Column("r3", "f"),
							Op:  value.LE,
							Sub: &CountQuery{Rel: "r4", Corr: expr.EqCols("r4", "g", "r3", "e")},
						}},
					},
				}},
			},
		}},
	}
	for trial := 0; trial < 25; trial++ {
		db := joinAggDB(rng, 5)
		db["r4"] = newBuilder("r4", []string{"g"}).
			Row(value.NewInt(int64(rng.Intn(3)))).
			Row(value.NewInt(int64(rng.Intn(3)))).
			Relation()
		unnested, err := q.Unnest(db)
		if err != nil {
			t.Fatal(err)
		}
		want, err := q.TIS(db)
		if err != nil {
			t.Fatal(err)
		}
		got, err := unnested.Eval(db)
		if err != nil {
			t.Fatal(err)
		}
		if !got.EqualAsMultisets(want) {
			t.Fatalf("trial %d: depth-3 mismatch\ngot:\n%s\nwant:\n%s", trial, got, want)
		}
	}
}
