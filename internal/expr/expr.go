// Package expr implements scalar expressions and the conjunctive,
// null in-tolerant predicates the paper's operators are specified
// with (footnotes 1–2 in Section 1.1).
//
// A predicate p has a schema sch(p) — the attributes it references.
// Predicates referencing exactly two relations are *simple*;
// predicates referencing more than two are *complex* (Section 1.2),
// and it is complex predicates that the association identities of
// Section 3.1 break up.
package expr

import (
	"sort"
	"strings"

	"repro/internal/schema"
	"repro/internal/value"
)

// Env resolves attribute references during evaluation. Lookup returns
// (value, true) when the attribute is bound. Environments chain for
// correlated (tuple-iteration-semantics) evaluation.
type Env interface {
	Lookup(a schema.Attribute) (value.Value, bool)
}

// TupleEnv binds a tuple against its schema.
type TupleEnv struct {
	Schema *schema.Schema
	Tuple  []value.Value
}

// Lookup implements Env.
func (e TupleEnv) Lookup(a schema.Attribute) (value.Value, bool) {
	i := e.Schema.IndexOf(a)
	if i < 0 {
		return value.Null, false
	}
	return e.Tuple[i], true
}

// ChainEnv resolves against Inner first, then Outer; it implements
// the correlation scoping of nested subqueries.
type ChainEnv struct {
	Inner Env
	Outer Env
}

// Lookup implements Env.
func (e ChainEnv) Lookup(a schema.Attribute) (value.Value, bool) {
	if v, ok := e.Inner.Lookup(a); ok {
		return v, true
	}
	if e.Outer != nil {
		return e.Outer.Lookup(a)
	}
	return value.Null, false
}

// Scalar is a side-effect-free scalar expression.
type Scalar interface {
	// Eval computes the expression's value; unresolvable column
	// references and arithmetic on NULL yield NULL.
	Eval(env Env) value.Value
	// Attrs appends the referenced attributes to dst and returns it.
	Attrs(dst []schema.Attribute) []schema.Attribute
	// String renders the expression canonically.
	String() string
}

// Col references an attribute.
type Col struct{ Attr schema.Attribute }

// Column is shorthand for a column reference rel.col.
func Column(rel, col string) Col { return Col{Attr: schema.Attr(rel, col)} }

// Eval implements Scalar.
func (c Col) Eval(env Env) value.Value {
	v, _ := env.Lookup(c.Attr)
	return v
}

// Attrs implements Scalar.
func (c Col) Attrs(dst []schema.Attribute) []schema.Attribute { return append(dst, c.Attr) }

// String implements Scalar.
func (c Col) String() string { return c.Attr.String() }

// Const is a literal value.
type Const struct{ Val value.Value }

// Int is shorthand for an integer literal.
func Int(v int64) Const { return Const{Val: value.NewInt(v)} }

// Str is shorthand for a string literal.
func Str(v string) Const { return Const{Val: value.NewString(v)} }

// Float is shorthand for a float literal.
func Float(v float64) Const { return Const{Val: value.NewFloat(v)} }

// Eval implements Scalar.
func (c Const) Eval(Env) value.Value { return c.Val }

// Attrs implements Scalar.
func (c Const) Attrs(dst []schema.Attribute) []schema.Attribute { return dst }

// String implements Scalar.
func (c Const) String() string { return c.Val.GoString() }

// ArithOp enumerates binary arithmetic operators.
type ArithOp uint8

// The arithmetic operators.
const (
	Add ArithOp = iota
	Sub
	Mul
	Div
)

// String renders the operator symbol.
func (op ArithOp) String() string {
	switch op {
	case Add:
		return "+"
	case Sub:
		return "-"
	case Mul:
		return "*"
	case Div:
		return "/"
	default:
		return "?"
	}
}

// Arith is a binary arithmetic expression; NULL operands propagate to
// a NULL result, and non-numeric operands also yield NULL.
type Arith struct {
	Op   ArithOp
	L, R Scalar
}

// Eval implements Scalar.
func (a Arith) Eval(env Env) value.Value {
	l, r := a.L.Eval(env), a.R.Eval(env)
	if l.IsNull() || r.IsNull() || !l.IsNumeric() || !r.IsNumeric() {
		return value.Null
	}
	if l.Kind() == value.KindInt && r.Kind() == value.KindInt && a.Op != Div {
		li, ri := l.Int(), r.Int()
		switch a.Op {
		case Add:
			return value.NewInt(li + ri)
		case Sub:
			return value.NewInt(li - ri)
		case Mul:
			return value.NewInt(li * ri)
		}
	}
	lf, rf := l.Float(), r.Float()
	switch a.Op {
	case Add:
		return value.NewFloat(lf + rf)
	case Sub:
		return value.NewFloat(lf - rf)
	case Mul:
		return value.NewFloat(lf * rf)
	case Div:
		if rf == 0 {
			return value.Null
		}
		return value.NewFloat(lf / rf)
	}
	return value.Null
}

// Attrs implements Scalar.
func (a Arith) Attrs(dst []schema.Attribute) []schema.Attribute {
	return a.R.Attrs(a.L.Attrs(dst))
}

// String implements Scalar. Concatenation, not fmt: scalar strings
// are on the plan-fingerprint hot path.
func (a Arith) String() string {
	return "(" + a.L.String() + " " + a.Op.String() + " " + a.R.String() + ")"
}

// Pred is a three-valued-logic predicate. All predicates built from
// Cmp atoms are null in-tolerant: a NULL in any referenced attribute
// makes the atom Unknown, which never Holds.
type Pred interface {
	Eval(env Env) value.Tristate
	Attrs(dst []schema.Attribute) []schema.Attribute
	String() string
}

// True is the always-true predicate (used for cartesian products).
type True struct{}

// Eval implements Pred.
func (True) Eval(Env) value.Tristate { return value.True }

// Attrs implements Pred.
func (True) Attrs(dst []schema.Attribute) []schema.Attribute { return dst }

// String implements Pred.
func (True) String() string { return "true" }

// Cmp is a comparison atom l θ r.
type Cmp struct {
	Op   value.CmpOp
	L, R Scalar
}

// Eq builds the equality atom l = r.
func Eq(l, r Scalar) Cmp { return Cmp{Op: value.EQ, L: l, R: r} }

// EqCols builds the equi-join atom rel1.col1 = rel2.col2.
func EqCols(rel1, col1, rel2, col2 string) Cmp {
	return Eq(Column(rel1, col1), Column(rel2, col2))
}

// Eval implements Pred.
func (c Cmp) Eval(env Env) value.Tristate {
	return value.Apply(c.Op, c.L.Eval(env), c.R.Eval(env))
}

// Attrs implements Pred.
func (c Cmp) Attrs(dst []schema.Attribute) []schema.Attribute {
	return c.R.Attrs(c.L.Attrs(dst))
}

// String implements Pred. Concatenation, not fmt: predicate strings
// are rendered once per candidate plan the enumerator generates.
func (c Cmp) String() string {
	return c.L.String() + " " + c.Op.String() + " " + c.R.String()
}

// Conj is the conjunction p1 ∧ … ∧ pn. An empty conjunction is true.
type Conj struct{ Preds []Pred }

// Eval implements Pred.
func (c Conj) Eval(env Env) value.Tristate {
	out := value.True
	for _, p := range c.Preds {
		out = out.And(p.Eval(env))
		if out == value.False {
			return value.False
		}
	}
	return out
}

// Attrs implements Pred.
func (c Conj) Attrs(dst []schema.Attribute) []schema.Attribute {
	for _, p := range c.Preds {
		dst = p.Attrs(dst)
	}
	return dst
}

// String implements Pred.
func (c Conj) String() string {
	if len(c.Preds) == 0 {
		return "true"
	}
	parts := make([]string, len(c.Preds))
	for i, p := range c.Preds {
		parts[i] = p.String()
	}
	return strings.Join(parts, " and ")
}

// And conjoins predicates, flattening nested conjunctions and
// dropping True atoms. It returns True{} for an empty result and the
// single atom unwrapped for a singleton.
func And(preds ...Pred) Pred {
	var flat []Pred
	var walk func(p Pred)
	walk = func(p Pred) {
		switch q := p.(type) {
		case nil:
		case True:
		case Conj:
			for _, sub := range q.Preds {
				walk(sub)
			}
		default:
			flat = append(flat, p)
		}
	}
	for _, p := range preds {
		walk(p)
	}
	switch len(flat) {
	case 0:
		return True{}
	case 1:
		return flat[0]
	}
	return Conj{Preds: flat}
}

// Conjuncts returns the flat list of atomic conjuncts of p; True
// yields an empty list.
func Conjuncts(p Pred) []Pred {
	var out []Pred
	var walk func(p Pred)
	walk = func(p Pred) {
		switch q := p.(type) {
		case nil:
		case True:
		case Conj:
			for _, sub := range q.Preds {
				walk(sub)
			}
		default:
			out = append(out, p)
		}
	}
	walk(p)
	return out
}

// Rels returns the sorted set of relation names referenced by p
// (sch(p) grouped by qualifier).
func Rels(p Pred) []string {
	set := make(map[string]bool)
	for _, a := range p.Attrs(nil) {
		set[a.Rel] = true
	}
	out := make([]string, 0, len(set))
	for r := range set {
		out = append(out, r)
	}
	sort.Strings(out)
	return out
}

// RelSet returns the set of relation names referenced by p.
func RelSet(p Pred) map[string]bool {
	set := make(map[string]bool)
	for _, a := range p.Attrs(nil) {
		set[a.Rel] = true
	}
	return set
}

// IsSimple reports whether p references exactly two relations
// (Section 1.2's simple predicate).
func IsSimple(p Pred) bool { return len(Rels(p)) == 2 }

// IsComplex reports whether p references more than two relations.
func IsComplex(p Pred) bool { return len(Rels(p)) > 2 }

// ReferencesOnly reports whether every attribute of p belongs to a
// relation in rels.
func ReferencesOnly(p Pred, rels map[string]bool) bool {
	for _, a := range p.Attrs(nil) {
		if !rels[a.Rel] {
			return false
		}
	}
	return true
}

// References reports whether p references any attribute of a relation
// in rels.
func References(p Pred, rels map[string]bool) bool {
	for _, a := range p.Attrs(nil) {
		if rels[a.Rel] {
			return true
		}
	}
	return false
}

// ReferencesAttr reports whether p references attribute a.
func ReferencesAttr(p Pred, a schema.Attribute) bool {
	for _, x := range p.Attrs(nil) {
		if x == a {
			return true
		}
	}
	return false
}
