package expr

import (
	"encoding/json"
	"fmt"

	"repro/internal/schema"
	"repro/internal/value"
)

// The JSON encoding of expressions is a small tagged-union format
// used by plan serialization (plan caching, EXPLAIN tooling):
//
//	{"kind":"col","rel":"r1","col":"x","virtual":false}
//	{"kind":"const","type":"INT","value":"42"}
//	{"kind":"arith","op":"*","l":…,"r":…}
//	{"kind":"param","idx":1}
//	{"kind":"cmp","op":"<=","l":…,"r":…}
//	{"kind":"and","preds":[…]}  {"kind":"or","preds":[…]}
//	{"kind":"not","pred":…}     {"kind":"true"}

type jsonExpr struct {
	Kind    string            `json:"kind"`
	Rel     string            `json:"rel,omitempty"`
	Col     string            `json:"col,omitempty"`
	Virtual bool              `json:"virtual,omitempty"`
	Type    string            `json:"type,omitempty"`
	Value   string            `json:"value,omitempty"`
	Op      string            `json:"op,omitempty"`
	Idx     int               `json:"idx,omitempty"`
	L       json.RawMessage   `json:"l,omitempty"`
	R       json.RawMessage   `json:"r,omitempty"`
	Pred    json.RawMessage   `json:"pred,omitempty"`
	Preds   []json.RawMessage `json:"preds,omitempty"`
}

// EncodeScalar serializes a scalar expression.
func EncodeScalar(s Scalar) ([]byte, error) {
	switch x := s.(type) {
	case Col:
		return json.Marshal(jsonExpr{Kind: "col", Rel: x.Attr.Rel, Col: x.Attr.Col, Virtual: x.Attr.Virtual})
	case Const:
		return json.Marshal(jsonExpr{Kind: "const", Type: x.Val.Kind().String(), Value: x.Val.String()})
	case Param:
		return json.Marshal(jsonExpr{Kind: "param", Idx: x.Idx})
	case Arith:
		l, err := EncodeScalar(x.L)
		if err != nil {
			return nil, err
		}
		r, err := EncodeScalar(x.R)
		if err != nil {
			return nil, err
		}
		return json.Marshal(jsonExpr{Kind: "arith", Op: x.Op.String(), L: l, R: r})
	default:
		return nil, fmt.Errorf("expr: cannot encode scalar %T", s)
	}
}

// DecodeScalar deserializes a scalar expression.
func DecodeScalar(data []byte) (Scalar, error) {
	var j jsonExpr
	if err := json.Unmarshal(data, &j); err != nil {
		return nil, err
	}
	switch j.Kind {
	case "col":
		return Col{Attr: schema.Attribute{Rel: j.Rel, Col: j.Col, Virtual: j.Virtual}}, nil
	case "const":
		v, err := decodeValue(j.Type, j.Value)
		if err != nil {
			return nil, err
		}
		return Const{Val: v}, nil
	case "param":
		if j.Idx < 1 {
			return nil, fmt.Errorf("expr: bad parameter index %d", j.Idx)
		}
		return Param{Idx: j.Idx}, nil
	case "arith":
		op, err := arithOpOf(j.Op)
		if err != nil {
			return nil, err
		}
		l, err := DecodeScalar(j.L)
		if err != nil {
			return nil, err
		}
		r, err := DecodeScalar(j.R)
		if err != nil {
			return nil, err
		}
		return Arith{Op: op, L: l, R: r}, nil
	default:
		return nil, fmt.Errorf("expr: unknown scalar kind %q", j.Kind)
	}
}

// EncodePred serializes a predicate.
func EncodePred(p Pred) ([]byte, error) {
	switch x := p.(type) {
	case True:
		return json.Marshal(jsonExpr{Kind: "true"})
	case Cmp:
		l, err := EncodeScalar(x.L)
		if err != nil {
			return nil, err
		}
		r, err := EncodeScalar(x.R)
		if err != nil {
			return nil, err
		}
		return json.Marshal(jsonExpr{Kind: "cmp", Op: x.Op.String(), L: l, R: r})
	case Conj:
		parts, err := encodePreds(x.Preds)
		if err != nil {
			return nil, err
		}
		return json.Marshal(jsonExpr{Kind: "and", Preds: parts})
	case Disj:
		parts, err := encodePreds(x.Preds)
		if err != nil {
			return nil, err
		}
		return json.Marshal(jsonExpr{Kind: "or", Preds: parts})
	case Not:
		inner, err := EncodePred(x.P)
		if err != nil {
			return nil, err
		}
		return json.Marshal(jsonExpr{Kind: "not", Pred: inner})
	default:
		return nil, fmt.Errorf("expr: cannot encode predicate %T", p)
	}
}

func encodePreds(preds []Pred) ([]json.RawMessage, error) {
	out := make([]json.RawMessage, len(preds))
	for i, p := range preds {
		b, err := EncodePred(p)
		if err != nil {
			return nil, err
		}
		out[i] = b
	}
	return out, nil
}

// DecodePred deserializes a predicate.
func DecodePred(data []byte) (Pred, error) {
	var j jsonExpr
	if err := json.Unmarshal(data, &j); err != nil {
		return nil, err
	}
	switch j.Kind {
	case "true":
		return True{}, nil
	case "cmp":
		op, err := cmpOpOf(j.Op)
		if err != nil {
			return nil, err
		}
		l, err := DecodeScalar(j.L)
		if err != nil {
			return nil, err
		}
		r, err := DecodeScalar(j.R)
		if err != nil {
			return nil, err
		}
		return Cmp{Op: op, L: l, R: r}, nil
	case "and", "or":
		preds := make([]Pred, len(j.Preds))
		for i, raw := range j.Preds {
			p, err := DecodePred(raw)
			if err != nil {
				return nil, err
			}
			preds[i] = p
		}
		if j.Kind == "and" {
			return Conj{Preds: preds}, nil
		}
		return Disj{Preds: preds}, nil
	case "not":
		inner, err := DecodePred(j.Pred)
		if err != nil {
			return nil, err
		}
		return Not{P: inner}, nil
	default:
		return nil, fmt.Errorf("expr: unknown predicate kind %q", j.Kind)
	}
}

func decodeValue(kind, text string) (value.Value, error) {
	switch kind {
	case "NULL":
		return value.Null, nil
	case "INT":
		var n int64
		if _, err := fmt.Sscanf(text, "%d", &n); err != nil {
			return value.Null, fmt.Errorf("expr: bad INT %q", text)
		}
		return value.NewInt(n), nil
	case "FLOAT":
		var f float64
		if _, err := fmt.Sscanf(text, "%g", &f); err != nil {
			return value.Null, fmt.Errorf("expr: bad FLOAT %q", text)
		}
		return value.NewFloat(f), nil
	case "STRING":
		return value.NewString(text), nil
	case "BOOL":
		return value.NewBool(text == "true"), nil
	default:
		return value.Null, fmt.Errorf("expr: unknown value type %q", kind)
	}
}

func arithOpOf(s string) (ArithOp, error) {
	switch s {
	case "+":
		return Add, nil
	case "-":
		return Sub, nil
	case "*":
		return Mul, nil
	case "/":
		return Div, nil
	}
	return 0, fmt.Errorf("expr: unknown arithmetic operator %q", s)
}

func cmpOpOf(s string) (value.CmpOp, error) {
	switch s {
	case "=":
		return value.EQ, nil
	case "<>":
		return value.NE, nil
	case "<":
		return value.LT, nil
	case "<=":
		return value.LE, nil
	case ">":
		return value.GT, nil
	case ">=":
		return value.GE, nil
	}
	return 0, fmt.Errorf("expr: unknown comparison %q", s)
}
