package expr

import (
	"strconv"

	"repro/internal/schema"
	"repro/internal/value"
)

// Param is a parameter slot "$n" (1-based) in a parameterized
// expression tree. Parameterization replaces every literal of a query
// with a slot so that queries differing only in their constants share
// one canonical plan fingerprint — and therefore one cached optimized
// plan. A Param is bound back to a Const (plan.BindParams) before
// execution; an unbound slot evaluates to NULL, which under
// three-valued logic never satisfies a predicate, so a plan that
// escapes binding fails closed instead of returning wrong rows.
type Param struct{ Idx int }

// Eval implements Scalar. Unbound parameters are NULL.
func (p Param) Eval(Env) value.Value { return value.Null }

// Attrs implements Scalar: a parameter references no attributes, so
// rules that reason about sch(p) treat parameterized predicates
// exactly like their constant-bearing originals.
func (p Param) Attrs(dst []schema.Attribute) []schema.Attribute { return dst }

// String implements Scalar. The "$n" rendering is what lands in
// plan.Key, making the fingerprint literal-independent; genuine string
// literals render quoted (value.GoString), so a slot can never collide
// with a constant that happens to spell "$1".
func (p Param) String() string { return "$" + strconv.Itoa(p.Idx) }

// RewriteScalar rebuilds s bottom-up, replacing each leaf with f(leaf)
// and reporting whether anything changed. Interior nodes are rebuilt
// only on a changed branch, so untouched subtrees keep their identity.
func RewriteScalar(s Scalar, f func(Scalar) Scalar) (Scalar, bool) {
	switch x := s.(type) {
	case Arith:
		l, lc := RewriteScalar(x.L, f)
		r, rc := RewriteScalar(x.R, f)
		if !lc && !rc {
			return x, false
		}
		return Arith{Op: x.Op, L: l, R: r}, true
	default:
		if out := f(s); out != s {
			return out, true
		}
		return s, false
	}
}

// RewritePred rebuilds p with every scalar leaf passed through f,
// reporting whether anything changed. Unchanged predicates return as
// they were handed in, preserving sharing.
func RewritePred(p Pred, f func(Scalar) Scalar) (Pred, bool) {
	switch x := p.(type) {
	case Cmp:
		l, lc := RewriteScalar(x.L, f)
		r, rc := RewriteScalar(x.R, f)
		if !lc && !rc {
			return x, false
		}
		return Cmp{Op: x.Op, L: l, R: r}, true
	case Conj:
		return rewritePreds(x.Preds, f, func(ps []Pred) Pred { return Conj{Preds: ps} }, x)
	case Disj:
		return rewritePreds(x.Preds, f, func(ps []Pred) Pred { return Disj{Preds: ps} }, x)
	case Not:
		inner, c := RewritePred(x.P, f)
		if !c {
			return x, false
		}
		return Not{P: inner}, true
	default:
		return p, false
	}
}

// rewritePreds maps RewritePred over a predicate list, rebuilding the
// container through rebuild only when some element changed.
func rewritePreds(preds []Pred, f func(Scalar) Scalar, rebuild func([]Pred) Pred, orig Pred) (Pred, bool) {
	changed := false
	out := make([]Pred, len(preds))
	for i, sub := range preds {
		p, c := RewritePred(sub, f)
		out[i] = p
		changed = changed || c
	}
	if !changed {
		return orig, false
	}
	return rebuild(out), true
}

// WalkScalars calls f on every scalar leaf of p (left to right,
// depth-first) — the traversal parameter extraction and slot counting
// are built on.
func WalkScalars(p Pred, f func(Scalar)) {
	switch x := p.(type) {
	case Cmp:
		walkScalar(x.L, f)
		walkScalar(x.R, f)
	case Conj:
		for _, sub := range x.Preds {
			WalkScalars(sub, f)
		}
	case Disj:
		for _, sub := range x.Preds {
			WalkScalars(sub, f)
		}
	case Not:
		WalkScalars(x.P, f)
	}
}

// WalkScalarLeaves calls f on every leaf of a scalar tree.
func WalkScalarLeaves(s Scalar, f func(Scalar)) { walkScalar(s, f) }

func walkScalar(s Scalar, f func(Scalar)) {
	if a, ok := s.(Arith); ok {
		walkScalar(a.L, f)
		walkScalar(a.R, f)
		return
	}
	f(s)
}
