package expr

import (
	"testing"

	"repro/internal/schema"
	"repro/internal/value"
)

func env(cols map[string]value.Value) Env {
	attrs := make([]schema.Attribute, 0, len(cols))
	vals := make([]value.Value, 0, len(cols))
	for k, v := range cols {
		attrs = append(attrs, schema.Attr("r", k))
		vals = append(vals, v)
	}
	return TupleEnv{Schema: schema.New(attrs...), Tuple: vals}
}

func TestColAndConst(t *testing.T) {
	e := env(map[string]value.Value{"a": value.NewInt(7)})
	if got := Column("r", "a").Eval(e); got.Int() != 7 {
		t.Errorf("col eval = %v", got)
	}
	if got := Column("r", "missing").Eval(e); !got.IsNull() {
		t.Errorf("missing column must be NULL, got %v", got)
	}
	if got := Int(3).Eval(e); got.Int() != 3 {
		t.Errorf("const = %v", got)
	}
	if Str("x").Eval(e).Str() != "x" || Float(1.5).Eval(e).Float() != 1.5 {
		t.Error("literal constructors wrong")
	}
}

func TestArith(t *testing.T) {
	e := env(map[string]value.Value{"a": value.NewInt(6), "b": value.NewInt(4), "n": value.Null})
	a, b := Column("r", "a"), Column("r", "b")
	cases := []struct {
		op   ArithOp
		want int64
	}{{Add, 10}, {Sub, 2}, {Mul, 24}}
	for _, c := range cases {
		if got := (Arith{Op: c.op, L: a, R: b}).Eval(e); got.Int() != c.want {
			t.Errorf("6 %v 4 = %v", c.op, got)
		}
	}
	if got := (Arith{Op: Div, L: a, R: b}).Eval(e); got.Float() != 1.5 {
		t.Errorf("6/4 = %v", got)
	}
	if got := (Arith{Op: Div, L: a, R: Int(0)}).Eval(e); !got.IsNull() {
		t.Errorf("division by zero must be NULL, got %v", got)
	}
	if got := (Arith{Op: Add, L: a, R: Column("r", "n")}).Eval(e); !got.IsNull() {
		t.Errorf("NULL propagation failed: %v", got)
	}
	if got := (Arith{Op: Add, L: Str("x"), R: Int(1)}).Eval(e); !got.IsNull() {
		t.Errorf("non-numeric arithmetic must be NULL: %v", got)
	}
	// Float contagion.
	if got := (Arith{Op: Mul, L: Float(0.5), R: Int(4)}).Eval(e); got.Float() != 2 {
		t.Errorf("0.5*4 = %v", got)
	}
}

func TestCmpThreeValued(t *testing.T) {
	e := env(map[string]value.Value{"a": value.NewInt(1), "n": value.Null})
	eq := Eq(Column("r", "a"), Int(1))
	if eq.Eval(e) != value.True {
		t.Error("1 = 1 must be true")
	}
	unknown := Eq(Column("r", "n"), Int(1))
	if unknown.Eval(e) != value.Unknown {
		t.Error("NULL = 1 must be unknown")
	}
}

func TestConjShortCircuitAndThreeValue(t *testing.T) {
	e := env(map[string]value.Value{"a": value.NewInt(1), "n": value.Null})
	f := Eq(Column("r", "a"), Int(2))     // false
	u := Eq(Column("r", "n"), Int(1))     // unknown
	tr := Eq(Column("r", "a"), Int(1))    // true
	if And(f, u).Eval(e) != value.False { // false and unknown = false
		t.Error("false ∧ unknown must be false")
	}
	if And(tr, u).Eval(e) != value.Unknown {
		t.Error("true ∧ unknown must be unknown")
	}
	if And(tr, tr).Eval(e) != value.True {
		t.Error("true ∧ true must be true")
	}
	if (True{}).Eval(e) != value.True {
		t.Error("True must hold")
	}
}

func TestAndFlattening(t *testing.T) {
	a := Eq(Column("r1", "x"), Column("r2", "x"))
	b := Eq(Column("r2", "y"), Column("r3", "y"))
	c := Eq(Column("r1", "z"), Column("r3", "z"))
	p := And(And(a, b), True{}, c)
	conj := Conjuncts(p)
	if len(conj) != 3 {
		t.Fatalf("conjuncts = %d, want 3", len(conj))
	}
	if And().String() != "true" {
		t.Error("empty And must be true")
	}
	if And(a) != Pred(a) {
		t.Error("singleton And must unwrap")
	}
	if len(Conjuncts(True{})) != 0 {
		t.Error("True has no conjuncts")
	}
	if And(nil, a).String() != a.String() {
		t.Error("nil preds are dropped")
	}
}

func TestRelsAndClassification(t *testing.T) {
	simple := Eq(Column("r1", "x"), Column("r2", "x"))
	complexPred := And(simple, Eq(Column("r1", "y"), Column("r3", "y")))
	oneRel := Eq(Column("r1", "x"), Int(3))
	if !IsSimple(simple) || IsComplex(simple) {
		t.Error("two-relation predicate is simple")
	}
	if !IsComplex(complexPred) || IsSimple(complexPred) {
		t.Error("three-relation predicate is complex")
	}
	if IsSimple(oneRel) || IsComplex(oneRel) {
		t.Error("one-relation predicate is neither")
	}
	if got := Rels(complexPred); len(got) != 3 || got[0] != "r1" {
		t.Errorf("rels = %v", got)
	}
	set := map[string]bool{"r1": true, "r2": true}
	if !ReferencesOnly(simple, set) || ReferencesOnly(complexPred, set) {
		t.Error("ReferencesOnly wrong")
	}
	if !References(complexPred, map[string]bool{"r3": true}) {
		t.Error("References wrong")
	}
	if !ReferencesAttr(simple, schema.Attr("r2", "x")) || ReferencesAttr(simple, schema.Attr("r2", "y")) {
		t.Error("ReferencesAttr wrong")
	}
}

func TestChainEnv(t *testing.T) {
	inner := env(map[string]value.Value{"a": value.NewInt(1)})
	outerAttrs := schema.New(schema.Attr("s", "b"))
	outer := TupleEnv{Schema: outerAttrs, Tuple: []value.Value{value.NewInt(2)}}
	chain := ChainEnv{Inner: inner, Outer: outer}
	if v, ok := chain.Lookup(schema.Attr("r", "a")); !ok || v.Int() != 1 {
		t.Error("inner lookup failed")
	}
	if v, ok := chain.Lookup(schema.Attr("s", "b")); !ok || v.Int() != 2 {
		t.Error("outer lookup failed")
	}
	if _, ok := chain.Lookup(schema.Attr("z", "z")); ok {
		t.Error("unknown attribute must miss")
	}
	noOuter := ChainEnv{Inner: inner}
	if _, ok := noOuter.Lookup(schema.Attr("s", "b")); ok {
		t.Error("nil outer must miss")
	}
}

func TestStrings(t *testing.T) {
	p := And(EqCols("r1", "x", "r2", "x"), Cmp{Op: value.LT, L: Column("r1", "y"), R: Int(3)})
	if p.String() != "r1.x = r2.x and r1.y < 3" {
		t.Errorf("conj string = %q", p.String())
	}
	a := Arith{Op: Mul, L: Int(2), R: Column("r", "c")}
	if a.String() != "(2 * r.c)" {
		t.Errorf("arith string = %q", a.String())
	}
	for _, op := range []ArithOp{Add, Sub, Mul, Div} {
		if op.String() == "?" {
			t.Errorf("missing String for %d", op)
		}
	}
}

func TestDisjAndNot(t *testing.T) {
	e := env(map[string]value.Value{"a": value.NewInt(1), "n": value.Null})
	tr := Eq(Column("r", "a"), Int(1))
	fa := Eq(Column("r", "a"), Int(2))
	un := Eq(Column("r", "n"), Int(1))

	if Or(fa, tr).Eval(e) != value.True {
		t.Error("false ∨ true must be true")
	}
	if Or(fa, fa).Eval(e) != value.False {
		t.Error("false ∨ false must be false")
	}
	if Or(fa, un).Eval(e) != value.Unknown {
		t.Error("false ∨ unknown must be unknown")
	}
	if Or(tr, un).Eval(e) != value.True {
		t.Error("true ∨ unknown must be true")
	}
	// Flattening and unwrapping.
	if Or(tr) != Pred(tr) {
		t.Error("singleton Or must unwrap")
	}
	nested := Or(Or(fa, fa), tr)
	if len(nested.(Disj).Preds) != 3 {
		t.Errorf("Or must flatten, got %s", nested)
	}
	if got := Or(fa, tr).String(); got != "(r.a = 2 or r.a = 1)" {
		t.Errorf("Or string = %q", got)
	}
	if got := Or(fa, tr).Attrs(nil); len(got) != 2 {
		t.Errorf("Or attrs = %v", got)
	}

	if (Not{P: tr}).Eval(e) != value.False || (Not{P: fa}).Eval(e) != value.True {
		t.Error("Not truth table wrong")
	}
	if (Not{P: un}).Eval(e) != value.Unknown {
		t.Error("Not(unknown) must stay unknown")
	}
	if got := (Not{P: tr}).String(); got != "not (r.a = 1)" {
		t.Errorf("Not string = %q", got)
	}
	if got := (Not{P: tr}).Attrs(nil); len(got) != 1 {
		t.Errorf("Not attrs = %v", got)
	}
}

func TestPredHelpers(t *testing.T) {
	if got := (True{}).Attrs(nil); len(got) != 0 {
		t.Errorf("True attrs = %v", got)
	}
	conj := Conj{Preds: []Pred{Eq(Column("r1", "x"), Column("r2", "x"))}}
	if got := conj.Attrs(nil); len(got) != 2 {
		t.Errorf("Conj attrs = %v", got)
	}
	set := RelSet(conj)
	if !set["r1"] || !set["r2"] || len(set) != 2 {
		t.Errorf("RelSet = %v", set)
	}
	if (Conj{}).String() != "true" {
		t.Error("empty Conj string")
	}
}

// TestJSONRoundTrip covers the expression serialization directly.
func TestJSONRoundTrip(t *testing.T) {
	scalars := []Scalar{
		Column("r1", "x"),
		Col{Attr: schema.RID("r1")},
		Int(42),
		Float(2.5),
		Str("hello"),
		Const{Val: value.Null},
		Const{Val: value.NewBool(true)},
		Arith{Op: Mul, L: Int(2), R: Arith{Op: Add, L: Column("r", "a"), R: Float(0.5)}},
	}
	for _, s := range scalars {
		data, err := EncodeScalar(s)
		if err != nil {
			t.Fatalf("%s: %v", s, err)
		}
		back, err := DecodeScalar(data)
		if err != nil {
			t.Fatalf("%s: %v (%s)", s, err, data)
		}
		if back.String() != s.String() {
			t.Errorf("scalar round trip %q -> %q", s, back)
		}
	}
	preds := []Pred{
		True{},
		Cmp{Op: value.LE, L: Column("r1", "x"), R: Int(3)},
		And(EqCols("r1", "x", "r2", "x"), EqCols("r1", "y", "r2", "y")),
		Or(EqCols("r1", "x", "r2", "x"), Not{P: True{}}),
	}
	for _, p := range preds {
		data, err := EncodePred(p)
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		back, err := DecodePred(data)
		if err != nil {
			t.Fatalf("%s: %v (%s)", p, err, data)
		}
		if back.String() != p.String() {
			t.Errorf("pred round trip %q -> %q", p, back)
		}
	}
}

func TestJSONDecodeErrors(t *testing.T) {
	for _, bad := range []string{
		``, `{"kind":"wat"}`, `{"kind":"const","type":"WAT","value":"1"}`,
		`{"kind":"const","type":"INT","value":"x"}`,
		`{"kind":"const","type":"FLOAT","value":"x"}`,
		`{"kind":"arith","op":"%","l":{"kind":"const","type":"INT","value":"1"},"r":{"kind":"const","type":"INT","value":"1"}}`,
	} {
		if _, err := DecodeScalar([]byte(bad)); err == nil {
			t.Errorf("DecodeScalar(%q) should fail", bad)
		}
	}
	for _, bad := range []string{
		``, `{"kind":"wat"}`,
		`{"kind":"cmp","op":"~","l":{"kind":"const","type":"INT","value":"1"},"r":{"kind":"const","type":"INT","value":"1"}}`,
		`{"kind":"and","preds":[{"kind":"wat"}]}`,
		`{"kind":"not","pred":{"kind":"wat"}}`,
	} {
		if _, err := DecodePred([]byte(bad)); err == nil {
			t.Errorf("DecodePred(%q) should fail", bad)
		}
	}
	// All comparison and arithmetic operators decode.
	for _, op := range []string{"=", "<>", "<", "<=", ">", ">="} {
		if _, err := cmpOpOf(op); err != nil {
			t.Errorf("cmpOpOf(%q): %v", op, err)
		}
	}
	for _, op := range []string{"+", "-", "*", "/"} {
		if _, err := arithOpOf(op); err != nil {
			t.Errorf("arithOpOf(%q): %v", op, err)
		}
	}
}
