package expr

import (
	"strings"

	"repro/internal/schema"
	"repro/internal/value"
)

// Disj is the disjunction p1 ∨ … ∨ pn under three-valued logic. The
// paper's binary operators take conjunctive predicates only; a
// disjunction therefore behaves as a single atomic conjunct — it is
// never broken up by the association identities, but it is perfectly
// legal inside selections and as one conjunct of a join predicate.
type Disj struct{ Preds []Pred }

// Eval implements Pred.
func (d Disj) Eval(env Env) value.Tristate {
	out := value.False
	for _, p := range d.Preds {
		out = out.Or(p.Eval(env))
		if out == value.True {
			return value.True
		}
	}
	return out
}

// Attrs implements Pred.
func (d Disj) Attrs(dst []schema.Attribute) []schema.Attribute {
	for _, p := range d.Preds {
		dst = p.Attrs(dst)
	}
	return dst
}

// String implements Pred.
func (d Disj) String() string {
	parts := make([]string, len(d.Preds))
	for i, p := range d.Preds {
		parts[i] = p.String()
	}
	return "(" + strings.Join(parts, " or ") + ")"
}

// Or builds a disjunction, flattening nested ones. An empty Or is
// false-ish (never holds); a singleton unwraps.
func Or(preds ...Pred) Pred {
	var flat []Pred
	var walk func(p Pred)
	walk = func(p Pred) {
		switch q := p.(type) {
		case nil:
		case Disj:
			for _, sub := range q.Preds {
				walk(sub)
			}
		default:
			flat = append(flat, p)
		}
	}
	for _, p := range preds {
		walk(p)
	}
	if len(flat) == 1 {
		return flat[0]
	}
	return Disj{Preds: flat}
}

// Not is three-valued negation; NOT over Unknown stays Unknown, so
// NULLs still never satisfy a filter.
type Not struct{ P Pred }

// Eval implements Pred.
func (n Not) Eval(env Env) value.Tristate { return n.P.Eval(env).Not() }

// Attrs implements Pred.
func (n Not) Attrs(dst []schema.Attribute) []schema.Attribute { return n.P.Attrs(dst) }

// String implements Pred.
func (n Not) String() string { return "not (" + n.P.String() + ")" }
