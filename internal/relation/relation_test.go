package relation

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/schema"
	"repro/internal/value"
)

func sample() *Relation {
	return NewBuilder("r", "a", "b").
		Row(value.NewInt(1), value.NewInt(10)).
		Row(value.NewInt(1), value.NewInt(10)).
		Row(value.NewInt(2), value.Null).
		Relation()
}

func TestBuilderAssignsRIDs(t *testing.T) {
	r := sample()
	rid := schema.RID("r")
	seen := map[int64]bool{}
	for _, tu := range r.Tuples() {
		id := r.Value(tu, rid).Int()
		if seen[id] {
			t.Fatalf("duplicate rid %d", id)
		}
		seen[id] = true
	}
}

func TestBuilderArityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("wrong arity must panic")
		}
	}()
	NewBuilder("r", "a").Row(value.NewInt(1), value.NewInt(2))
}

func TestAppendArityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("wrong arity must panic")
		}
	}()
	sample().Append(Tuple{value.NewInt(1)})
}

func TestProjectDistinct(t *testing.T) {
	r := sample()
	a := schema.Attr("r", "a")
	dup := r.Project([]schema.Attribute{a}, false)
	if dup.Len() != 3 {
		t.Errorf("non-distinct projection lost rows: %d", dup.Len())
	}
	dis := r.Project([]schema.Attribute{a}, true)
	if dis.Len() != 2 {
		t.Errorf("distinct projection = %d rows, want 2", dis.Len())
	}
}

func TestMinus(t *testing.T) {
	r := sample()
	a := []schema.Attribute{schema.Attr("r", "a")}
	all := r.Project(a, true)
	none := all.Minus(all)
	if none.Len() != 0 {
		t.Errorf("x - x must be empty, got %d", none.Len())
	}
	empty := New(schema.New(a...))
	if got := all.Minus(empty); got.Len() != all.Len() {
		t.Errorf("x - empty must be x")
	}
	// NULLs are identical for Minus.
	withNull := New(schema.New(schema.Attr("r", "b")))
	withNull.Append(Tuple{value.Null})
	if got := withNull.Minus(withNull); got.Len() != 0 {
		t.Error("NULL rows must cancel in Minus")
	}
}

func TestOuterUnionPadsNulls(t *testing.T) {
	r1 := NewBuilder("r1", "a").Row(value.NewInt(1)).Relation()
	r2 := NewBuilder("r2", "b").Row(value.NewInt(2)).Relation()
	u := r1.OuterUnion(r2)
	if u.Len() != 2 || u.Schema().Len() != 4 {
		t.Fatalf("outer union shape: %d rows, schema %s", u.Len(), u.Schema())
	}
	if !u.Value(u.Tuple(0), schema.Attr("r2", "b")).IsNull() {
		t.Error("r1 row must be padded on r2 attributes")
	}
	if !u.Value(u.Tuple(1), schema.Attr("r1", "a")).IsNull() {
		t.Error("r2 row must be padded on r1 attributes")
	}
}

func TestReorderRoundTrip(t *testing.T) {
	r := sample()
	attrs := r.Schema().Attrs()
	rev := make([]schema.Attribute, len(attrs))
	for i := range attrs {
		rev[i] = attrs[len(attrs)-1-i]
	}
	back := r.Reorder(schema.New(rev...)).Reorder(r.Schema())
	if !back.EqualAsMultisets(r) {
		t.Error("reorder round trip changed contents")
	}
}

func TestEqualAsSetsIgnoresOrderAndDuplicates(t *testing.T) {
	r := sample()
	shuffled := New(r.Schema())
	shuffled.Append(r.Tuple(2))
	shuffled.Append(r.Tuple(0))
	shuffled.Append(r.Tuple(1))
	shuffled.Append(r.Tuple(0)) // duplicate collapses under set semantics
	if !r.EqualAsSets(shuffled) {
		t.Error("set equality must ignore order and duplicates")
	}
	if r.EqualAsMultisets(shuffled) {
		t.Error("multiset equality must notice the extra duplicate")
	}
}

func TestEqualDifferentSchemas(t *testing.T) {
	r1 := NewBuilder("r1", "a").Row(value.NewInt(1)).Relation()
	r2 := NewBuilder("r2", "a").Row(value.NewInt(1)).Relation()
	if r1.EqualAsSets(r2) {
		t.Error("different attribute sets are never equal")
	}
}

func TestFormatHidesVirtual(t *testing.T) {
	r := sample()
	withOut := r.Format(false)
	if strings.Contains(withOut, "#rid") {
		t.Error("Format(false) must hide row ids")
	}
	withRid := r.Format(true)
	if !strings.Contains(withRid, "#rid") {
		t.Error("Format(true) must show row ids")
	}
	if !strings.Contains(withOut, "-") {
		t.Error("NULL renders as dash, matching the paper's tables")
	}
}

func TestSortForDisplayDeterministic(t *testing.T) {
	mk := func(seed int64) string {
		rng := rand.New(rand.NewSource(seed))
		b := NewBuilder("r", "a")
		vals := []int64{3, 1, 2, 1}
		rng.Shuffle(len(vals), func(i, j int) { vals[i], vals[j] = vals[j], vals[i] })
		for _, v := range vals {
			b.Row(value.NewInt(v))
		}
		r := b.Relation()
		// Strip rids so ordering depends on data only.
		p := r.Project([]schema.Attribute{schema.Attr("r", "a")}, false)
		p.SortForDisplay()
		return p.String()
	}
	if mk(1) != mk(2) {
		t.Error("display order must not depend on insertion order")
	}
}

// TestPadToProperty: padding to a superset schema preserves the
// original columns and NULL-fills the rest.
func TestPadToProperty(t *testing.T) {
	f := func(vals []int8) bool {
		b := NewBuilder("r", "a")
		for _, v := range vals {
			b.Row(value.NewInt(int64(v)))
		}
		r := b.Relation()
		super := r.Schema().Concat(schema.Base("s", "x"))
		padded := r.PadTo(super)
		if padded.Len() != r.Len() {
			return false
		}
		for i, tu := range padded.Tuples() {
			if !padded.Value(tu, schema.Attr("s", "x")).IsNull() {
				return false
			}
			if !value.Equal(padded.Value(tu, schema.Attr("r", "a")), r.Value(r.Tuple(i), schema.Attr("r", "a"))) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestTupleKeyDistinguishesBoundaries(t *testing.T) {
	// ("ab", "c") must differ from ("a", "bc").
	t1 := Tuple{value.NewString("ab"), value.NewString("c")}
	t2 := Tuple{value.NewString("a"), value.NewString("bc")}
	if t1.Key() == t2.Key() {
		t.Error("tuple keys must respect value boundaries")
	}
}

// TestTupleHash64MatchesKey: the hash identity agrees with the string
// Key identity (both mirror pointwise value.Equal) on a spread of
// tuples, and EqualTuple agrees with Key equality.
func TestTupleHash64MatchesKey(t *testing.T) {
	tuples := []Tuple{
		{},
		{value.Null},
		{value.Null, value.Null},
		{value.NewInt(1)},
		{value.NewFloat(1)},
		{value.NewInt(1), value.NewInt(2)},
		{value.NewInt(2), value.NewInt(1)},
		{value.NewString("ab"), value.NewString("c")},
		{value.NewString("a"), value.NewString("bc")},
		{value.NewBool(true)},
		{value.NewBool(false)},
	}
	for i, a := range tuples {
		for j, b := range tuples {
			keyEq := a.Key() == b.Key() && len(a) == len(b)
			if a.EqualTuple(b) != keyEq {
				t.Errorf("EqualTuple(%d,%d)=%v, Key equality %v", i, j, a.EqualTuple(b), keyEq)
			}
			if keyEq && a.Hash64() != b.Hash64() {
				t.Errorf("tuples %d,%d equal but hashes differ", i, j)
			}
		}
	}
}

// TestHashOnNullKeys: HashOn refuses NULL keys (null in-tolerant
// join semantics) while Hash64 over whole tuples accepts them.
func TestHashOnNullKeys(t *testing.T) {
	tu := Tuple{value.NewInt(1), value.Null}
	if _, ok := tu.HashOn([]int{0}); !ok {
		t.Error("non-NULL key column must hash")
	}
	if _, ok := tu.HashOn([]int{0, 1}); ok {
		t.Error("NULL key column must not hash")
	}
	_ = tu.Hash64() // whole-tuple identity hash must tolerate NULLs
}

// TestSetOpsUnderForcedCollisions drives distinct projection, Minus
// and the multiset comparators through tuples that collide in Hash64
// (distinct ints sharing a float64 image) and checks the collision
// verification keeps them apart.
func TestSetOpsUnderForcedCollisions(t *testing.T) {
	const big = int64(1) << 53
	a := value.NewInt(big)
	b := value.NewInt(big + 1)
	if (Tuple{a}).Hash64() != (Tuple{b}).Hash64() {
		t.Fatal("test premise: tuples must collide")
	}
	r := New(schema.Base("r", "x"))
	r.Append(Tuple{a, value.NewInt(0)})
	r.Append(Tuple{b, value.NewInt(1)})
	r.Append(Tuple{a, value.NewInt(2)})
	x := []schema.Attribute{schema.Attr("r", "x")}
	if got := r.Project(x, true).Len(); got != 2 {
		t.Errorf("distinct over colliding values = %d rows, want 2", got)
	}
	other := New(schema.New(schema.Attr("r", "x")))
	other.Append(Tuple{a})
	proj := r.Project(x, false)
	if got := proj.Minus(other).Len(); got != 1 {
		t.Errorf("minus under collision = %d rows, want 1", got)
	}
	one := New(schema.New(schema.Attr("r", "x")))
	one.Append(Tuple{a})
	two := New(schema.New(schema.Attr("r", "x")))
	two.Append(Tuple{b})
	if one.EqualAsSets(two) || one.EqualAsMultisets(two) {
		t.Error("colliding but unequal tuples must not compare equal")
	}
}
