package relation

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/schema"
	"repro/internal/value"
)

func sample() *Relation {
	return NewBuilder("r", "a", "b").
		Row(value.NewInt(1), value.NewInt(10)).
		Row(value.NewInt(1), value.NewInt(10)).
		Row(value.NewInt(2), value.Null).
		Relation()
}

func TestBuilderAssignsRIDs(t *testing.T) {
	r := sample()
	rid := schema.RID("r")
	seen := map[int64]bool{}
	for _, tu := range r.Tuples() {
		id := r.Value(tu, rid).Int()
		if seen[id] {
			t.Fatalf("duplicate rid %d", id)
		}
		seen[id] = true
	}
}

func TestBuilderArityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("wrong arity must panic")
		}
	}()
	NewBuilder("r", "a").Row(value.NewInt(1), value.NewInt(2))
}

func TestAppendArityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("wrong arity must panic")
		}
	}()
	sample().Append(Tuple{value.NewInt(1)})
}

func TestProjectDistinct(t *testing.T) {
	r := sample()
	a := schema.Attr("r", "a")
	dup := r.Project([]schema.Attribute{a}, false)
	if dup.Len() != 3 {
		t.Errorf("non-distinct projection lost rows: %d", dup.Len())
	}
	dis := r.Project([]schema.Attribute{a}, true)
	if dis.Len() != 2 {
		t.Errorf("distinct projection = %d rows, want 2", dis.Len())
	}
}

func TestMinus(t *testing.T) {
	r := sample()
	a := []schema.Attribute{schema.Attr("r", "a")}
	all := r.Project(a, true)
	none := all.Minus(all)
	if none.Len() != 0 {
		t.Errorf("x - x must be empty, got %d", none.Len())
	}
	empty := New(schema.New(a...))
	if got := all.Minus(empty); got.Len() != all.Len() {
		t.Errorf("x - empty must be x")
	}
	// NULLs are identical for Minus.
	withNull := New(schema.New(schema.Attr("r", "b")))
	withNull.Append(Tuple{value.Null})
	if got := withNull.Minus(withNull); got.Len() != 0 {
		t.Error("NULL rows must cancel in Minus")
	}
}

func TestOuterUnionPadsNulls(t *testing.T) {
	r1 := NewBuilder("r1", "a").Row(value.NewInt(1)).Relation()
	r2 := NewBuilder("r2", "b").Row(value.NewInt(2)).Relation()
	u := r1.OuterUnion(r2)
	if u.Len() != 2 || u.Schema().Len() != 4 {
		t.Fatalf("outer union shape: %d rows, schema %s", u.Len(), u.Schema())
	}
	if !u.Value(u.Tuple(0), schema.Attr("r2", "b")).IsNull() {
		t.Error("r1 row must be padded on r2 attributes")
	}
	if !u.Value(u.Tuple(1), schema.Attr("r1", "a")).IsNull() {
		t.Error("r2 row must be padded on r1 attributes")
	}
}

func TestReorderRoundTrip(t *testing.T) {
	r := sample()
	attrs := r.Schema().Attrs()
	rev := make([]schema.Attribute, len(attrs))
	for i := range attrs {
		rev[i] = attrs[len(attrs)-1-i]
	}
	back := r.Reorder(schema.New(rev...)).Reorder(r.Schema())
	if !back.EqualAsMultisets(r) {
		t.Error("reorder round trip changed contents")
	}
}

func TestEqualAsSetsIgnoresOrderAndDuplicates(t *testing.T) {
	r := sample()
	shuffled := New(r.Schema())
	shuffled.Append(r.Tuple(2))
	shuffled.Append(r.Tuple(0))
	shuffled.Append(r.Tuple(1))
	shuffled.Append(r.Tuple(0)) // duplicate collapses under set semantics
	if !r.EqualAsSets(shuffled) {
		t.Error("set equality must ignore order and duplicates")
	}
	if r.EqualAsMultisets(shuffled) {
		t.Error("multiset equality must notice the extra duplicate")
	}
}

func TestEqualDifferentSchemas(t *testing.T) {
	r1 := NewBuilder("r1", "a").Row(value.NewInt(1)).Relation()
	r2 := NewBuilder("r2", "a").Row(value.NewInt(1)).Relation()
	if r1.EqualAsSets(r2) {
		t.Error("different attribute sets are never equal")
	}
}

func TestFormatHidesVirtual(t *testing.T) {
	r := sample()
	withOut := r.Format(false)
	if strings.Contains(withOut, "#rid") {
		t.Error("Format(false) must hide row ids")
	}
	withRid := r.Format(true)
	if !strings.Contains(withRid, "#rid") {
		t.Error("Format(true) must show row ids")
	}
	if !strings.Contains(withOut, "-") {
		t.Error("NULL renders as dash, matching the paper's tables")
	}
}

func TestSortForDisplayDeterministic(t *testing.T) {
	mk := func(seed int64) string {
		rng := rand.New(rand.NewSource(seed))
		b := NewBuilder("r", "a")
		vals := []int64{3, 1, 2, 1}
		rng.Shuffle(len(vals), func(i, j int) { vals[i], vals[j] = vals[j], vals[i] })
		for _, v := range vals {
			b.Row(value.NewInt(v))
		}
		r := b.Relation()
		// Strip rids so ordering depends on data only.
		p := r.Project([]schema.Attribute{schema.Attr("r", "a")}, false)
		p.SortForDisplay()
		return p.String()
	}
	if mk(1) != mk(2) {
		t.Error("display order must not depend on insertion order")
	}
}

// TestPadToProperty: padding to a superset schema preserves the
// original columns and NULL-fills the rest.
func TestPadToProperty(t *testing.T) {
	f := func(vals []int8) bool {
		b := NewBuilder("r", "a")
		for _, v := range vals {
			b.Row(value.NewInt(int64(v)))
		}
		r := b.Relation()
		super := r.Schema().Concat(schema.Base("s", "x"))
		padded := r.PadTo(super)
		if padded.Len() != r.Len() {
			return false
		}
		for i, tu := range padded.Tuples() {
			if !padded.Value(tu, schema.Attr("s", "x")).IsNull() {
				return false
			}
			if !value.Equal(padded.Value(tu, schema.Attr("r", "a")), r.Value(r.Tuple(i), schema.Attr("r", "a"))) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestTupleKeyDistinguishesBoundaries(t *testing.T) {
	// ("ab", "c") must differ from ("a", "bc").
	t1 := Tuple{value.NewString("ab"), value.NewString("c")}
	t2 := Tuple{value.NewString("a"), value.NewString("bc")}
	if t1.Key() == t2.Key() {
		t.Error("tuple keys must respect value boundaries")
	}
}
