// Package relation implements the extensions (the E of r = <R, V, E>
// in Section 1.2) of relations: in-memory tuple sets over a schema,
// together with the set-level operations the paper's algebra is
// defined with — outer union ⊎, duplicate-preserving and
// set-semantics projection, and set difference.
//
// Tuples carry real and virtual attributes side by side; virtual
// attributes (row identifiers) make base tuples distinguishable, so
// the set operations below implement exactly the paper's definitions
// even in the presence of duplicate real values.
package relation

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/schema"
	"repro/internal/value"
)

// Tuple is a row: values aligned with a Relation's schema.
type Tuple []value.Value

// Clone returns a copy of the tuple.
func (t Tuple) Clone() Tuple { return append(Tuple(nil), t...) }

// Key returns a string identity key over all values, used for set
// difference and duplicate elimination. Two tuples have equal keys
// iff value.Equal holds pointwise (NULL identical to NULL).
func (t Tuple) Key() string {
	var b strings.Builder
	for _, v := range t {
		k := v.Key()
		fmt.Fprintf(&b, "%d:%s|", len(k), k)
	}
	return b.String()
}

// Hash64 returns an allocation-free, order-sensitive 64-bit hash of
// the whole tuple, consistent with EqualTuple: equal tuples hash
// equal. Unequal tuples may collide (value.Hash64 merges numeric
// identities through float64), so hash consumers must confirm bucket
// hits with EqualTuple.
func (t Tuple) Hash64() uint64 {
	h := value.HashSeed
	for _, v := range t {
		h = value.HashCombine(h, v.Hash64())
	}
	return h
}

// HashOn hashes the values at the given column positions. It reports
// ok=false when any of them is NULL — the form used for join and
// grouping keys under null in-tolerant predicates, where a NULL key
// can never match.
func (t Tuple) HashOn(idx []int) (h uint64, ok bool) {
	h = value.HashSeed
	for _, i := range idx {
		v := t[i]
		if v.IsNull() {
			return 0, false
		}
		h = value.HashCombine(h, v.Hash64())
	}
	return h, true
}

// EqualTuple reports pointwise value.Equal between t and o (NULL
// identical to NULL) — the identity equality behind Key, used to
// verify Hash64 bucket hits.
func (t Tuple) EqualTuple(o Tuple) bool {
	if len(t) != len(o) {
		return false
	}
	for i, v := range t {
		if !value.Equal(v, o[i]) {
			return false
		}
	}
	return true
}

// EqualOn reports pointwise value.Equal between t's columns ti and
// o's columns oi; the slices must have equal length.
func (t Tuple) EqualOn(o Tuple, ti, oi []int) bool {
	for k, i := range ti {
		if !value.Equal(t[i], o[oi[k]]) {
			return false
		}
	}
	return true
}

// tupleSet is a hash set of tuples bucketed by Hash64 with EqualTuple
// verification; it replaces string-keyed maps on the duplicate
// elimination and set difference paths, where rendering Key for every
// tuple dominated the profile.
type tupleSet struct {
	buckets map[uint64][]Tuple
	n       int
}

func newTupleSet(capacity int) *tupleSet {
	return &tupleSet{buckets: make(map[uint64][]Tuple, capacity)}
}

// Add inserts t and reports whether it was absent.
func (s *tupleSet) Add(t Tuple) bool {
	h := t.Hash64()
	for _, o := range s.buckets[h] {
		if t.EqualTuple(o) {
			return false
		}
	}
	s.buckets[h] = append(s.buckets[h], t)
	s.n++
	return true
}

// Has reports membership.
func (s *tupleSet) Has(t Tuple) bool {
	for _, o := range s.buckets[t.Hash64()] {
		if t.EqualTuple(o) {
			return true
		}
	}
	return false
}

// tupleCounter is a hash multiset of tuples, the multiset analogue of
// tupleSet.
type tupleCounter struct {
	buckets map[uint64][]tupleCount
}

type tupleCount struct {
	t Tuple
	n int
}

func newTupleCounter(capacity int) *tupleCounter {
	return &tupleCounter{buckets: make(map[uint64][]tupleCount, capacity)}
}

// Inc adds one occurrence of t.
func (c *tupleCounter) Inc(t Tuple) {
	h := t.Hash64()
	b := c.buckets[h]
	for i := range b {
		if t.EqualTuple(b[i].t) {
			b[i].n++
			return
		}
	}
	c.buckets[h] = append(b, tupleCount{t: t, n: 1})
}

// Dec removes one occurrence of t, reporting false when none remains.
func (c *tupleCounter) Dec(t Tuple) bool {
	b := c.buckets[t.Hash64()]
	for i := range b {
		if t.EqualTuple(b[i].t) {
			if b[i].n == 0 {
				return false
			}
			b[i].n--
			return true
		}
	}
	return false
}

// Relation is a schema plus a multiset of tuples.
type Relation struct {
	schema *schema.Schema
	tuples []Tuple
}

// New returns an empty relation over the given schema.
func New(s *schema.Schema) *Relation {
	return &Relation{schema: s}
}

// Schema returns the relation's schema.
func (r *Relation) Schema() *schema.Schema { return r.schema }

// Len returns the number of tuples.
func (r *Relation) Len() int { return len(r.tuples) }

// Tuple returns the i-th tuple.
func (r *Relation) Tuple(i int) Tuple { return r.tuples[i] }

// Tuples returns the underlying tuple slice; callers must not mutate
// the returned tuples.
func (r *Relation) Tuples() []Tuple { return r.tuples }

// Append adds a tuple; it panics if the arity does not match the
// schema.
func (r *Relation) Append(t Tuple) {
	if len(t) != r.schema.Len() {
		panic(fmt.Sprintf("relation: tuple arity %d does not match schema %s", len(t), r.schema))
	}
	r.tuples = append(r.tuples, t)
}

// AppendAll adds a batch of tuples; it panics if any arity does not
// match the schema. It is the merge step of partition-parallel
// operators, which accumulate per-partition slices and concatenate.
func (r *Relation) AppendAll(ts []Tuple) {
	want := r.schema.Len()
	for _, t := range ts {
		if len(t) != want {
			panic(fmt.Sprintf("relation: tuple arity %d does not match schema %s", len(t), r.schema))
		}
	}
	r.tuples = append(r.tuples, ts...)
}

// Value returns the value of attribute a in tuple t of this
// relation's schema; it panics if a is absent.
func (r *Relation) Value(t Tuple, a schema.Attribute) value.Value {
	i := r.schema.IndexOf(a)
	if i < 0 {
		panic(fmt.Sprintf("relation: attribute %s not in schema %s", a, r.schema))
	}
	return t[i]
}

// Builder assembles a base relation with automatically assigned
// virtual row identifiers.
type Builder struct {
	rel    *Relation
	name   string
	nextID int64
}

// NewBuilder starts a base relation named rel with the given real
// columns; the schema additionally carries rel.#rid.
func NewBuilder(rel string, cols ...string) *Builder {
	return &Builder{rel: New(schema.Base(rel, cols...)), name: rel}
}

// Row appends one tuple of real values (in column order) and assigns
// the next row identifier. It panics on arity mismatch.
func (b *Builder) Row(vals ...value.Value) *Builder {
	if len(vals) != b.rel.schema.Len()-1 {
		panic(fmt.Sprintf("relation: row arity %d for schema %s", len(vals), b.rel.schema))
	}
	t := make(Tuple, 0, len(vals)+1)
	t = append(t, vals...)
	t = append(t, value.NewInt(b.nextID))
	b.nextID++
	b.rel.Append(t)
	return b
}

// Relation returns the built relation.
func (b *Builder) Relation() *Relation { return b.rel }

// Project returns the projection of r onto attrs. When distinct is
// true duplicates are removed (set semantics, as in the π_{R_i V_i}
// of Definition 2.1); otherwise duplicates are preserved.
func (r *Relation) Project(attrs []schema.Attribute, distinct bool) *Relation {
	idx := make([]int, len(attrs))
	for i, a := range attrs {
		idx[i] = r.schema.IndexOf(a)
		if idx[i] < 0 {
			panic(fmt.Sprintf("relation: project on missing attribute %s", a))
		}
	}
	out := New(schema.New(attrs...))
	var seen *tupleSet
	if distinct {
		seen = newTupleSet(len(r.tuples))
	}
	for _, t := range r.tuples {
		nt := make(Tuple, len(idx))
		for i, j := range idx {
			nt[i] = t[j]
		}
		if distinct && !seen.Add(nt) {
			continue
		}
		out.Append(nt)
	}
	return out
}

// Minus returns the set difference r − other over identical schemas
// (attribute sets must match; other's columns are aligned by name).
func (r *Relation) Minus(other *Relation) *Relation {
	align := make([]int, r.schema.Len())
	for i := 0; i < r.schema.Len(); i++ {
		align[i] = other.schema.IndexOf(r.schema.At(i))
		if align[i] < 0 {
			panic(fmt.Sprintf("relation: minus with incompatible schema %s vs %s", r.schema, other.schema))
		}
	}
	seen := newTupleSet(other.Len())
	scratch := make(Tuple, len(align))
	for _, t := range other.tuples {
		for i, j := range align {
			scratch[i] = t[j]
		}
		if !seen.Has(scratch) {
			seen.Add(scratch.Clone())
		}
	}
	out := New(r.schema)
	for _, t := range r.tuples {
		if !seen.Has(t) {
			out.Append(t)
		}
	}
	return out
}

// OuterUnion implements r ⊎ other (Section 1.2): the result schema is
// the union of both schemas, and tuples from either side are padded
// with NULLs for the attributes they lack.
func (r *Relation) OuterUnion(other *Relation) *Relation {
	attrs := r.schema.Attrs()
	for _, a := range other.schema.Attrs() {
		if !r.schema.Contains(a) {
			attrs = append(attrs, a)
		}
	}
	s := schema.New(attrs...)
	out := New(s)
	pad := func(src *Relation) {
		idx := make([]int, s.Len())
		for i := 0; i < s.Len(); i++ {
			idx[i] = src.Schema().IndexOf(s.At(i))
		}
		for _, t := range src.Tuples() {
			nt := make(Tuple, s.Len())
			for i, j := range idx {
				if j < 0 {
					nt[i] = value.Null
				} else {
					nt[i] = t[j]
				}
			}
			out.Append(nt)
		}
	}
	pad(r)
	pad(other)
	return out
}

// PadTo returns r's tuples widened to schema s (a superset of r's
// schema), NULL-filling missing attributes.
func (r *Relation) PadTo(s *schema.Schema) *Relation {
	idx := make([]int, s.Len())
	for i := 0; i < s.Len(); i++ {
		idx[i] = r.schema.IndexOf(s.At(i))
	}
	out := New(s)
	for _, t := range r.tuples {
		nt := make(Tuple, s.Len())
		for i, j := range idx {
			if j < 0 {
				nt[i] = value.Null
			} else {
				nt[i] = t[j]
			}
		}
		out.Append(nt)
	}
	return out
}

// Reorder returns r with columns permuted to schema s, which must
// list exactly r's attributes.
func (r *Relation) Reorder(s *schema.Schema) *Relation {
	if s.Len() != r.schema.Len() {
		panic(fmt.Sprintf("relation: reorder to incompatible schema %s vs %s", s, r.schema))
	}
	idx := make([]int, s.Len())
	for i := 0; i < s.Len(); i++ {
		idx[i] = r.schema.IndexOf(s.At(i))
		if idx[i] < 0 {
			panic(fmt.Sprintf("relation: reorder missing attribute %s", s.At(i)))
		}
	}
	out := New(s)
	for _, t := range r.tuples {
		nt := make(Tuple, len(idx))
		for i, j := range idx {
			nt[i] = t[j]
		}
		out.Append(nt)
	}
	return out
}

// EqualAsSets reports whether the two relations contain the same set
// of tuples over the same attribute set (column order independent;
// duplicates collapse). This is the equivalence used to check the
// paper's identities, whose sides agree as sets of tuples carrying
// virtual attributes.
func (r *Relation) EqualAsSets(other *Relation) bool {
	if r.schema.Len() != other.schema.Len() || !r.schema.ContainsAll(other.schema) {
		return false
	}
	o := other.Reorder(r.schema)
	a := newTupleSet(r.Len())
	for _, t := range r.tuples {
		a.Add(t)
	}
	b := newTupleSet(o.Len())
	for _, t := range o.tuples {
		b.Add(t)
	}
	if a.n != b.n {
		return false
	}
	for _, bucket := range b.buckets {
		for _, t := range bucket {
			if !a.Has(t) {
				return false
			}
		}
	}
	return true
}

// EqualAsMultisets reports whether the two relations contain the same
// multiset of tuples over the same attribute set.
func (r *Relation) EqualAsMultisets(other *Relation) bool {
	if r.schema.Len() != other.schema.Len() || !r.schema.ContainsAll(other.schema) {
		return false
	}
	o := other.Reorder(r.schema)
	if r.Len() != o.Len() {
		return false
	}
	counts := newTupleCounter(r.Len())
	for _, t := range r.tuples {
		counts.Inc(t)
	}
	for _, t := range o.tuples {
		if !counts.Dec(t) {
			return false
		}
	}
	return true
}

// SortForDisplay orders tuples lexicographically by their rendered
// values, producing deterministic output for tables and tests.
func (r *Relation) SortForDisplay() {
	sort.SliceStable(r.tuples, func(i, j int) bool {
		a, b := r.tuples[i], r.tuples[j]
		for k := range a {
			as, bs := a[k].Key(), b[k].Key()
			if as != bs {
				return as < bs
			}
		}
		return false
	})
}

// Format renders the relation as an aligned text table. When
// showVirtual is false, virtual (row id) columns are hidden — the
// paper's example tables show only real attributes.
func (r *Relation) Format(showVirtual bool) string {
	var cols []int
	for i := 0; i < r.schema.Len(); i++ {
		if showVirtual || !r.schema.At(i).Virtual {
			cols = append(cols, i)
		}
	}
	headers := make([]string, len(cols))
	widths := make([]int, len(cols))
	for i, c := range cols {
		headers[i] = r.schema.At(c).String()
		widths[i] = len(headers[i])
	}
	rows := make([][]string, 0, r.Len())
	for _, t := range r.tuples {
		row := make([]string, len(cols))
		for i, c := range cols {
			row[i] = t[c].String()
			if len(row[i]) > widths[i] {
				widths[i] = len(row[i])
			}
		}
		rows = append(rows, row)
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			for p := len(cell); p < widths[i]; p++ {
				b.WriteByte(' ')
			}
		}
		b.WriteByte('\n')
	}
	writeRow(headers)
	for _, row := range rows {
		writeRow(row)
	}
	return b.String()
}

// String renders the relation with virtual columns hidden.
func (r *Relation) String() string { return r.Format(false) }
