package relation

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/schema"
	"repro/internal/value"
)

func TestFromCSVTypes(t *testing.T) {
	data := "id,score,name\n1,2.5,ada\n2,,grace\n,3,\n"
	r, err := FromCSV("t", strings.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 3 {
		t.Fatalf("rows = %d", r.Len())
	}
	id := r.Value(r.Tuple(0), schema.Attr("t", "id"))
	if id.Kind() != value.KindInt || id.Int() != 1 {
		t.Errorf("id[0] = %v (%v)", id, id.Kind())
	}
	score := r.Value(r.Tuple(0), schema.Attr("t", "score"))
	if score.Kind() != value.KindFloat || score.Float() != 2.5 {
		t.Errorf("score[0] = %v", score)
	}
	if !r.Value(r.Tuple(1), schema.Attr("t", "score")).IsNull() {
		t.Error("empty cell must be NULL")
	}
	if !r.Value(r.Tuple(2), schema.Attr("t", "id")).IsNull() {
		t.Error("empty id must be NULL")
	}
	name := r.Value(r.Tuple(0), schema.Attr("t", "name"))
	if name.Kind() != value.KindString || name.Str() != "ada" {
		t.Errorf("name[0] = %v", name)
	}
}

func TestFromCSVMixedBecomesString(t *testing.T) {
	r, err := FromCSV("t", strings.NewReader("v\n1\nx\n"))
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Value(r.Tuple(0), schema.Attr("t", "v")); got.Kind() != value.KindString {
		t.Errorf("mixed column must fall back to string, got %v", got.Kind())
	}
}

func TestFromCSVErrors(t *testing.T) {
	if _, err := FromCSV("t", strings.NewReader("")); err == nil {
		t.Error("empty input must fail")
	}
	if _, err := FromCSV("t", strings.NewReader("a,b\n1\n")); err == nil {
		t.Error("ragged row must fail")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	r := NewBuilder("t", "a", "b").
		Row(value.NewInt(1), value.NewString("x")).
		Row(value.Null, value.NewString("y,z")).
		Relation()
	var buf bytes.Buffer
	if err := r.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := FromCSV("t", &buf)
	if err != nil {
		t.Fatal(err)
	}
	// Compare real columns only (row ids are re-assigned).
	attrs := []schema.Attribute{schema.Attr("t", "a"), schema.Attr("t", "b")}
	if !r.Project(attrs, false).EqualAsMultisets(back.Project(attrs, false)) {
		t.Fatalf("round trip changed data:\n%s\nvs\n%s", r, back)
	}
}
