package relation

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"repro/internal/value"
)

// FromCSV reads a base relation named name from CSV data: the first
// record is the header (column names), subsequent records are rows.
// Column types are inferred: a column whose every non-empty cell
// parses as an integer becomes INT, else FLOAT if everything parses
// as a float, else STRING. Empty cells are NULL. Row identifiers are
// assigned in file order.
func FromCSV(name string, r io.Reader) (*Relation, error) {
	cr := csv.NewReader(r)
	cr.TrimLeadingSpace = true
	records, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("relation: reading CSV for %q: %w", name, err)
	}
	if len(records) == 0 {
		return nil, fmt.Errorf("relation: CSV for %q has no header", name)
	}
	header := records[0]
	if len(header) == 0 {
		return nil, fmt.Errorf("relation: CSV for %q has an empty header", name)
	}
	rows := records[1:]

	// Infer per-column types over the non-empty cells.
	kinds := make([]value.Kind, len(header))
	for col := range header {
		kind := value.KindInt
		seen := false
		for _, rec := range rows {
			if col >= len(rec) || rec[col] == "" {
				continue
			}
			seen = true
			cell := rec[col]
			if kind == value.KindInt {
				if _, err := strconv.ParseInt(cell, 10, 64); err == nil {
					continue
				}
				kind = value.KindFloat
			}
			if kind == value.KindFloat {
				if _, err := strconv.ParseFloat(cell, 64); err == nil {
					continue
				}
				kind = value.KindString
			}
		}
		if !seen {
			kind = value.KindString
		}
		kinds[col] = kind
	}

	b := NewBuilder(name, header...)
	for i, rec := range rows {
		if len(rec) != len(header) {
			return nil, fmt.Errorf("relation: CSV for %q row %d has %d fields, header has %d",
				name, i+1, len(rec), len(header))
		}
		vals := make([]value.Value, len(header))
		for col, cell := range rec {
			if cell == "" {
				vals[col] = value.Null
				continue
			}
			switch kinds[col] {
			case value.KindInt:
				n, _ := strconv.ParseInt(cell, 10, 64)
				vals[col] = value.NewInt(n)
			case value.KindFloat:
				f, _ := strconv.ParseFloat(cell, 64)
				vals[col] = value.NewFloat(f)
			default:
				vals[col] = value.NewString(cell)
			}
		}
		b.Row(vals...)
	}
	return b.Relation(), nil
}

// WriteCSV writes the relation's real columns (virtual row ids are
// omitted) as CSV with a header row; NULLs become empty cells.
func (r *Relation) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	var cols []int
	var header []string
	for i := 0; i < r.schema.Len(); i++ {
		a := r.schema.At(i)
		if a.Virtual {
			continue
		}
		cols = append(cols, i)
		header = append(header, a.Col)
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, t := range r.tuples {
		rec := make([]string, len(cols))
		for k, i := range cols {
			if t[i].IsNull() {
				rec[k] = ""
			} else {
				rec[k] = t[i].String()
			}
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
