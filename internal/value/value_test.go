package value

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// genValue draws a random value, including NULLs, for property tests.
func genValue(rng *rand.Rand) Value {
	switch rng.Intn(5) {
	case 0:
		return Null
	case 1:
		return NewInt(int64(rng.Intn(7) - 3))
	case 2:
		return NewFloat(float64(rng.Intn(7)-3) / 2)
	case 3:
		return NewString(string(rune('a' + rng.Intn(4))))
	default:
		return NewBool(rng.Intn(2) == 0)
	}
}

// Generate implements quick.Generator.
func (Value) Generate(rng *rand.Rand, _ int) reflect.Value {
	return reflect.ValueOf(genValue(rng))
}

func TestKinds(t *testing.T) {
	cases := []struct {
		v    Value
		kind Kind
		str  string
	}{
		{Null, KindNull, "-"},
		{NewInt(42), KindInt, "42"},
		{NewFloat(2.5), KindFloat, "2.5"},
		{NewString("x"), KindString, "x"},
		{NewBool(true), KindBool, "true"},
		{NewBool(false), KindBool, "false"},
	}
	for _, c := range cases {
		if c.v.Kind() != c.kind {
			t.Errorf("%v kind = %v, want %v", c.v, c.v.Kind(), c.kind)
		}
		if c.v.String() != c.str {
			t.Errorf("%v string = %q, want %q", c.v, c.v.String(), c.str)
		}
	}
	if !Null.IsNull() || NewInt(0).IsNull() {
		t.Error("IsNull wrong")
	}
	if KindFloat.String() != "FLOAT" || Kind(99).String() == "" {
		t.Error("Kind.String wrong")
	}
}

func TestAccessorsPanic(t *testing.T) {
	assertPanics := func(f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Error("expected panic")
			}
		}()
		f()
	}
	assertPanics(func() { Null.Int() })
	assertPanics(func() { NewInt(1).Str() })
	assertPanics(func() { NewString("x").Float() })
	assertPanics(func() { NewInt(1).Bool() })
}

func TestCompareMixedNumeric(t *testing.T) {
	if c, ok := Compare(NewInt(2), NewFloat(2.0)); !ok || c != 0 {
		t.Errorf("2 vs 2.0: %d %v", c, ok)
	}
	if c, ok := Compare(NewInt(2), NewFloat(2.5)); !ok || c != -1 {
		t.Errorf("2 vs 2.5: %d %v", c, ok)
	}
	if _, ok := Compare(NewInt(1), NewString("1")); ok {
		t.Error("int vs string should be incomparable")
	}
	if _, ok := Compare(Null, NewInt(1)); ok {
		t.Error("NULL comparisons must fail")
	}
	if c, ok := Compare(NewBool(false), NewBool(true)); !ok || c != -1 {
		t.Errorf("false < true: %d %v", c, ok)
	}
	if c, ok := Compare(NewString("a"), NewString("b")); !ok || c != -1 {
		t.Errorf("string compare: %d %v", c, ok)
	}
}

// TestApplyNullIntolerant pins footnote 2: every operator yields
// Unknown on NULL operands.
func TestApplyNullIntolerant(t *testing.T) {
	for _, op := range []CmpOp{EQ, NE, LT, LE, GT, GE} {
		if got := Apply(op, Null, NewInt(1)); got != Unknown {
			t.Errorf("Apply(%v, NULL, 1) = %v", op, got)
		}
		if got := Apply(op, NewInt(1), Null); got != Unknown {
			t.Errorf("Apply(%v, 1, NULL) = %v", op, got)
		}
	}
}

func TestApplyOps(t *testing.T) {
	a, b := NewInt(1), NewInt(2)
	cases := map[CmpOp]Tristate{EQ: False, NE: True, LT: True, LE: True, GT: False, GE: False}
	for op, want := range cases {
		if got := Apply(op, a, b); got != want {
			t.Errorf("1 %v 2 = %v, want %v", op, got, want)
		}
	}
}

// TestFlipProperty: a θ b == b θ.Flip() a for all values and ops.
func TestFlipProperty(t *testing.T) {
	f := func(a, b Value) bool {
		for _, op := range []CmpOp{EQ, NE, LT, LE, GT, GE} {
			if Apply(op, a, b) != Apply(op.Flip(), b, a) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestTristateLaws checks commutativity, identity and De Morgan for
// three-valued logic by exhaustion.
func TestTristateLaws(t *testing.T) {
	all := []Tristate{True, False, Unknown}
	for _, a := range all {
		for _, b := range all {
			if a.And(b) != b.And(a) {
				t.Errorf("And not commutative at %v,%v", a, b)
			}
			if a.Or(b) != b.Or(a) {
				t.Errorf("Or not commutative at %v,%v", a, b)
			}
			if a.And(b).Not() != a.Not().Or(b.Not()) {
				t.Errorf("De Morgan (and) fails at %v,%v", a, b)
			}
			if a.Or(b).Not() != a.Not().And(b.Not()) {
				t.Errorf("De Morgan (or) fails at %v,%v", a, b)
			}
		}
		if a.And(True) != a || a.Or(False) != a {
			t.Errorf("identity laws fail at %v", a)
		}
		if a.And(False) != False || a.Or(True) != True {
			t.Errorf("absorbing laws fail at %v", a)
		}
		if a.Not().Not() != a {
			t.Errorf("double negation fails at %v", a)
		}
	}
	if !True.Holds() || False.Holds() || Unknown.Holds() {
		t.Error("Holds wrong")
	}
	if FromBool(true) != True || FromBool(false) != False {
		t.Error("FromBool wrong")
	}
}

// TestKeyEqualConsistency: Equal(a,b) iff Key(a) == Key(b).
func TestKeyEqualConsistency(t *testing.T) {
	f := func(a, b Value) bool {
		return Equal(a, b) == (a.Key() == b.Key())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestHash64EqualConsistency: Equal(a,b) implies equal hashes — the
// contract every collision-verified hash consumer relies on. (The
// converse need not hold: hashes may collide.)
func TestHash64EqualConsistency(t *testing.T) {
	f := func(a, b Value) bool {
		if Equal(a, b) && a.Hash64() != b.Hash64() {
			return false
		}
		return a.Hash64() == a.Hash64() // deterministic
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

func TestHash64Identities(t *testing.T) {
	if NewInt(3).Hash64() != NewFloat(3).Hash64() {
		t.Error("numerically equal int/float must share a hash bucket")
	}
	if NewFloat(0).Hash64() != NewFloat(negZero()).Hash64() {
		t.Error("-0 and +0 are Equal and must share a hash bucket")
	}
	if Null.Hash64() != Null.Hash64() {
		t.Error("NULL hash must be stable")
	}
	kinds := []Value{Null, NewInt(0), NewString(""), NewBool(false), NewBool(true)}
	seen := map[uint64]Value{}
	for _, v := range kinds {
		if prev, dup := seen[v.Hash64()]; dup {
			t.Errorf("kind-level collision between %#v and %#v", prev, v)
		}
		seen[v.Hash64()] = v
	}
}

// TestHash64HugeIntCollision pins the documented collision: distinct
// int64s beyond 2^53 that share a float64 image hash equal while Equal
// keeps them apart — exactly the case collision verification exists
// for (and the case the adversarial executor tests exploit).
func TestHash64HugeIntCollision(t *testing.T) {
	a, b := NewInt(1<<53), NewInt(1<<53+1)
	if Equal(a, b) {
		t.Fatal("2^53 and 2^53+1 are distinct ints")
	}
	if a.Hash64() != b.Hash64() {
		t.Fatal("expected a hash collision through the float64 image")
	}
}

func negZero() float64 {
	z := 0.0
	return -z
}

func TestEqualNullIdentity(t *testing.T) {
	if !Equal(Null, Null) {
		t.Error("NULL must be identical to NULL for grouping")
	}
	if Equal(Null, NewInt(0)) {
		t.Error("NULL != 0")
	}
	if !Equal(NewInt(3), NewFloat(3)) {
		t.Error("numerically equal int/float group together")
	}
}

func TestCmpOpString(t *testing.T) {
	want := map[CmpOp]string{EQ: "=", NE: "<>", LT: "<", LE: "<=", GT: ">", GE: ">="}
	for op, s := range want {
		if op.String() != s {
			t.Errorf("%v string = %q", op, op.String())
		}
	}
}

func TestGoString(t *testing.T) {
	if NewString("a b").GoString() != `"a b"` {
		t.Errorf("GoString = %q", NewString("a b").GoString())
	}
	if NewInt(3).GoString() != "3" {
		t.Errorf("GoString = %q", NewInt(3).GoString())
	}
}
