// Package value implements SQL scalar values with NULL and the
// three-valued logic that null in-tolerant predicate evaluation
// (Section 1.2 of Goel & Iyer, SIGMOD '96) is built on.
//
// A Value is a small immutable variant record: one of NULL, INT,
// FLOAT, STRING or BOOL. Comparisons between values follow SQL
// semantics: any comparison involving NULL yields Unknown, numeric
// kinds compare by value (an INT compares with a FLOAT), and
// cross-kind comparisons between non-numeric kinds are an error at
// plan-build time, surfaced here as Unknown.
package value

import (
	"fmt"
	"math"
	"strconv"
)

// Kind enumerates the runtime type of a Value.
type Kind uint8

// The supported value kinds.
const (
	KindNull Kind = iota
	KindInt
	KindFloat
	KindString
	KindBool
)

// String returns the SQL-ish name of the kind.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "NULL"
	case KindInt:
		return "INT"
	case KindFloat:
		return "FLOAT"
	case KindString:
		return "STRING"
	case KindBool:
		return "BOOL"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Value is an immutable SQL scalar. The zero Value is NULL.
type Value struct {
	kind Kind
	i    int64
	f    float64
	s    string
	b    bool
}

// Null is the SQL NULL value.
var Null = Value{}

// NewInt returns an INT value.
func NewInt(v int64) Value { return Value{kind: KindInt, i: v} }

// NewFloat returns a FLOAT value.
func NewFloat(v float64) Value { return Value{kind: KindFloat, f: v} }

// NewString returns a STRING value.
func NewString(v string) Value { return Value{kind: KindString, s: v} }

// NewBool returns a BOOL value.
func NewBool(v bool) Value { return Value{kind: KindBool, b: v} }

// Kind reports the value's runtime kind.
func (v Value) Kind() Kind { return v.kind }

// IsNull reports whether the value is SQL NULL.
func (v Value) IsNull() bool { return v.kind == KindNull }

// Int returns the INT payload; it panics if the kind is not INT.
func (v Value) Int() int64 {
	if v.kind != KindInt {
		panic(fmt.Sprintf("value: Int() on %s", v.kind))
	}
	return v.i
}

// Float returns the FLOAT payload, converting from INT if needed; it
// panics for non-numeric kinds.
func (v Value) Float() float64 {
	switch v.kind {
	case KindFloat:
		return v.f
	case KindInt:
		return float64(v.i)
	}
	panic(fmt.Sprintf("value: Float() on %s", v.kind))
}

// Str returns the STRING payload; it panics if the kind is not STRING.
func (v Value) Str() string {
	if v.kind != KindString {
		panic(fmt.Sprintf("value: Str() on %s", v.kind))
	}
	return v.s
}

// Bool returns the BOOL payload; it panics if the kind is not BOOL.
func (v Value) Bool() bool {
	if v.kind != KindBool {
		panic(fmt.Sprintf("value: Bool() on %s", v.kind))
	}
	return v.b
}

// IsNumeric reports whether the value is INT or FLOAT.
func (v Value) IsNumeric() bool { return v.kind == KindInt || v.kind == KindFloat }

// String renders the value for plan and table printing. NULL renders
// as "-" to match the dashes in the paper's example tables.
func (v Value) String() string {
	switch v.kind {
	case KindNull:
		return "-"
	case KindInt:
		return strconv.FormatInt(v.i, 10)
	case KindFloat:
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	case KindString:
		return v.s
	case KindBool:
		if v.b {
			return "true"
		}
		return "false"
	default:
		return "?"
	}
}

// GoString renders the value unambiguously for debugging.
func (v Value) GoString() string {
	if v.kind == KindString {
		return strconv.Quote(v.s)
	}
	return v.String()
}

// Tristate is the result of a three-valued-logic predicate: True,
// False or Unknown. SQL's WHERE/ON clauses keep a tuple only when the
// predicate is True, so Unknown behaves like False for filtering —
// exactly the "null in-tolerant" behaviour the paper assumes.
type Tristate uint8

// The three logic values.
const (
	Unknown Tristate = iota
	False
	True
)

// String returns "true", "false" or "unknown".
func (t Tristate) String() string {
	switch t {
	case True:
		return "true"
	case False:
		return "false"
	default:
		return "unknown"
	}
}

// FromBool lifts a Go bool into a Tristate.
func FromBool(b bool) Tristate {
	if b {
		return True
	}
	return False
}

// And is three-valued conjunction.
func (t Tristate) And(o Tristate) Tristate {
	if t == False || o == False {
		return False
	}
	if t == True && o == True {
		return True
	}
	return Unknown
}

// Or is three-valued disjunction.
func (t Tristate) Or(o Tristate) Tristate {
	if t == True || o == True {
		return True
	}
	if t == False && o == False {
		return False
	}
	return Unknown
}

// Not is three-valued negation.
func (t Tristate) Not() Tristate {
	switch t {
	case True:
		return False
	case False:
		return True
	default:
		return Unknown
	}
}

// Holds reports whether the tristate is True; Unknown filters out.
func (t Tristate) Holds() bool { return t == True }

// Compare orders two non-NULL values. It returns (-1|0|+1, true) when
// the values are comparable and (0, false) otherwise (either side
// NULL, or incompatible kinds). INT and FLOAT are mutually
// comparable; STRING compares lexicographically; BOOL orders false <
// true.
func Compare(a, b Value) (int, bool) {
	if a.kind == KindNull || b.kind == KindNull {
		return 0, false
	}
	if a.IsNumeric() && b.IsNumeric() {
		if a.kind == KindInt && b.kind == KindInt {
			switch {
			case a.i < b.i:
				return -1, true
			case a.i > b.i:
				return 1, true
			}
			return 0, true
		}
		af, bf := a.Float(), b.Float()
		switch {
		case af < bf:
			return -1, true
		case af > bf:
			return 1, true
		}
		return 0, true
	}
	if a.kind != b.kind {
		return 0, false
	}
	switch a.kind {
	case KindString:
		switch {
		case a.s < b.s:
			return -1, true
		case a.s > b.s:
			return 1, true
		}
		return 0, true
	case KindBool:
		av, bv := 0, 0
		if a.b {
			av = 1
		}
		if b.b {
			bv = 1
		}
		switch {
		case av < bv:
			return -1, true
		case av > bv:
			return 1, true
		}
		return 0, true
	}
	return 0, false
}

// CmpOp is a comparison operator θ ∈ {=, ≠, <, ≤, >, ≥} as used in
// the paper's predicates.
type CmpOp uint8

// The comparison operators.
const (
	EQ CmpOp = iota
	NE
	LT
	LE
	GT
	GE
)

// String renders the operator in SQL syntax.
func (op CmpOp) String() string {
	switch op {
	case EQ:
		return "="
	case NE:
		return "<>"
	case LT:
		return "<"
	case LE:
		return "<="
	case GT:
		return ">"
	case GE:
		return ">="
	default:
		return fmt.Sprintf("CmpOp(%d)", uint8(op))
	}
}

// Flip returns the operator that gives the same result with swapped
// operands: a θ b  ⇔  b θ.Flip() a.
func (op CmpOp) Flip() CmpOp {
	switch op {
	case LT:
		return GT
	case LE:
		return GE
	case GT:
		return LT
	case GE:
		return LE
	default: // EQ, NE are symmetric
		return op
	}
}

// Apply evaluates a θ b under three-valued logic. Any NULL operand or
// kind mismatch yields Unknown, which makes every predicate built on
// Apply null in-tolerant in the paper's sense (footnote 2).
func Apply(op CmpOp, a, b Value) Tristate {
	c, ok := Compare(a, b)
	if !ok {
		return Unknown
	}
	switch op {
	case EQ:
		return FromBool(c == 0)
	case NE:
		return FromBool(c != 0)
	case LT:
		return FromBool(c < 0)
	case LE:
		return FromBool(c <= 0)
	case GT:
		return FromBool(c > 0)
	case GE:
		return FromBool(c >= 0)
	}
	return Unknown
}

// Equal reports strict equality of two values, with NULL equal to
// NULL. This is *identity* equality used for grouping, duplicate
// elimination and set difference (where SQL treats NULLs as
// identical), not the three-valued `=` predicate.
func Equal(a, b Value) bool {
	if a.kind != b.kind {
		// INT/FLOAT with the same numeric value are still distinct
		// identities only if their numeric values differ.
		if a.IsNumeric() && b.IsNumeric() {
			return a.Float() == b.Float()
		}
		return false
	}
	switch a.kind {
	case KindNull:
		return true
	case KindInt:
		return a.i == b.i
	case KindFloat:
		return a.f == b.f
	case KindString:
		return a.s == b.s
	case KindBool:
		return a.b == b.b
	}
	return false
}

// Per-kind hash seeds; arbitrary odd 64-bit constants. Numeric kinds
// share one seed because Equal merges INT and FLOAT identities.
const (
	hashSeedNull    uint64 = 0x9e3779b97f4a7c15
	hashSeedNumeric uint64 = 0xc2b2ae3d27d4eb4f
	hashSeedString  uint64 = 0x165667b19e3779f9
	hashSeedBool    uint64 = 0x27d4eb2f165667c5
)

// FNV-1a parameters, shared with the tuple-level combiners in the
// relation package.
const (
	fnvOffset64 uint64 = 14695981039346656037
	fnvPrime64  uint64 = 1099511628211
)

// mix64 is the splitmix64 finalizer: a cheap full-avalanche mixer.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Hash64 returns an allocation-free 64-bit hash consistent with Equal:
// Equal(a, b) implies a.Hash64() == b.Hash64(). Numeric values hash
// through their float64 image (with -0 collapsed onto +0) so that INT 3
// and FLOAT 3.0 land in the same bucket, exactly as Equal merges them.
// Distinct huge ints that share a float64 image therefore collide;
// consumers must confirm bucket hits with Equal (collision
// verification), never treat hash equality as identity.
func (v Value) Hash64() uint64 {
	switch v.kind {
	case KindNull:
		return hashSeedNull
	case KindInt:
		return hashFloat64(float64(v.i))
	case KindFloat:
		return hashFloat64(v.f)
	case KindString:
		return HashStr(v.s)
	case KindBool:
		return HashBoolean(v.b)
	}
	return 0
}

func hashFloat64(f float64) uint64 {
	if f == 0 {
		f = 0 // collapse -0 onto +0: Equal treats them as identical
	}
	return mix64(hashSeedNumeric ^ math.Float64bits(f))
}

// HashInt64 is NewInt(v).Hash64() without constructing the Value: the
// hash of an INT, through the shared float64 image. The vectorized
// kernels hash typed column slices with these helpers so columnar and
// tuple hashing are guaranteed to agree bucket-for-bucket.
func HashInt64(v int64) uint64 { return hashFloat64(float64(v)) }

// HashFloat64 is NewFloat(f).Hash64() without constructing the Value.
func HashFloat64(f float64) uint64 { return hashFloat64(f) }

// HashStr is NewString(s).Hash64() without constructing the Value.
func HashStr(s string) uint64 {
	h := fnvOffset64
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime64
	}
	return mix64(h ^ hashSeedString)
}

// HashBoolean is NewBool(b).Hash64() without constructing the Value.
func HashBoolean(b bool) uint64 {
	if b {
		return mix64(hashSeedBool ^ 1)
	}
	return mix64(hashSeedBool)
}

// HashNull is Null.Hash64(): the hash grouping keys use for NULL
// (grouping treats NULL as identical to NULL).
func HashNull() uint64 { return hashSeedNull }

// HashCombine folds one value hash into a running order-sensitive
// tuple hash (FNV-1a style over 64-bit lanes). Start from HashSeed.
func HashCombine(h, vh uint64) uint64 { return (h ^ vh) * fnvPrime64 }

// HashSeed is the initial accumulator for HashCombine chains.
const HashSeed = fnvOffset64

// Key returns a string that is equal for exactly the values that
// Equal treats as identical. It is used as a map key for grouping and
// set operations.
func (v Value) Key() string {
	switch v.kind {
	case KindNull:
		return "n"
	case KindInt:
		return "i" + strconv.FormatInt(v.i, 10)
	case KindFloat:
		f := v.f
		if f >= -1e15 && f <= 1e15 && f == float64(int64(f)) {
			// Keep INT and FLOAT with the same numeric value in the
			// same group, matching Equal.
			return "i" + strconv.FormatInt(int64(f), 10)
		}
		return "f" + strconv.FormatFloat(f, 'g', -1, 64)
	case KindString:
		return "s" + v.s
	case KindBool:
		if v.b {
			return "bt"
		}
		return "bf"
	}
	return "?"
}
