package memo

import (
	"fmt"
	"math"
	"time"

	"repro/internal/guard"
	"repro/internal/obs"
	"repro/internal/plan"
)

// Coster abstracts the costing session extraction runs against
// (satisfied by stats.Session). PlanCostBound must return the plan's
// cost and whether it stayed strictly below the bound; when it did
// not, the returned cost may be partial and is ignored.
type Coster interface {
	PlanCost(n plan.Node) (float64, error)
	PlanCostBound(n plan.Node, bound float64) (cost float64, within bool, err error)
}

// Best is Extract's result.
type Best struct {
	Plan  plan.Node
	Cost  float64
	Group GroupID
	// Root indexes the roots slice passed to Extract, identifying
	// which seed's group won.
	Root int
}

// Extract computes the cheapest materialization of each root group
// bottom-up with winner tracking and branch-and-bound pruning, and
// returns the overall winner. Per group, expressions are visited in
// admission order; an expression whose child-winner cost sum already
// reaches the group's incumbent best is pruned without being
// materialized or costed (memo.pruned), and costing itself bails out
// early through Coster.PlanCostBound once it crosses the incumbent.
// Because every candidate's cost is the sum of its child costs plus a
// non-negative operator cost, pruning never discards a strictly
// cheaper plan, so the winner equals the minimum over the group's
// full materialization set whenever costs have optimal substructure
// (which the stats model's bottom-up recurrences do).
//
// Shared groups are extracted once; extraction wall time is reported
// as memo.extract_ns. The run carries pprof labels engine=memo
// phase=cost, matching the saturation path's costing label.
func (m *Memo) Extract(roots []GroupID, c Coster) (best Best, err error) {
	obs.WithPhase(m.opts.Budget.Context(), "memo", "cost", func() {
		best, err = m.extract(roots, c)
	})
	return best, err
}

func (m *Memo) extract(roots []GroupID, c Coster) (Best, error) {
	start := time.Now()
	defer func() {
		if reg := m.obs(); reg != nil {
			reg.Counter("memo.extract_ns").Add(time.Since(start).Nanoseconds())
		}
	}()
	onPath := make([]bool, len(m.groups))
	best := Best{Cost: math.Inf(1), Root: -1}
	for i, gid := range roots {
		g := m.groups[gid]
		if err := m.extractGroup(g, c, onPath); err != nil {
			return Best{}, err
		}
		if g.winner != nil && g.winnerCost < best.Cost {
			best = Best{Plan: g.winner, Cost: g.winnerCost, Group: gid, Root: i}
		}
	}
	if best.Plan == nil {
		return Best{}, fmt.Errorf("memo: no extractable plan among %d root groups", len(roots))
	}
	return best, nil
}

// Winner returns a group's cheapest materialization and cost, once
// Extract has run.
func (m *Memo) Winner(gid GroupID) (plan.Node, float64, bool) {
	g := m.groups[gid]
	if !g.extracted || g.winner == nil {
		return nil, 0, false
	}
	return g.winner, g.winnerCost, true
}

func (m *Memo) extractGroup(g *group, c Coster, onPath []bool) error {
	if g.extracted {
		return nil
	}
	// Group entry is extraction's deterministic guard point: groups
	// are visited in the same order for any configuration, so a
	// cancellation or injected fault aborts at the same group.
	if err := m.opts.Budget.Cancelled(); err != nil {
		return err
	}
	if err := guard.Hit(guard.PointMemoExtract); err != nil {
		return err
	}
	onPath[g.id] = true
	defer func() { onPath[g.id] = false }()
	reg := m.obs()
	incumbent := math.Inf(1)
	var winner plan.Node
	winnerExpr := exprID(-1)
	for _, eid := range g.exprs {
		e := m.exprs[eid]
		lb := 0.0
		usable := true
		var trees []plan.Node
		if len(e.children) > 0 {
			trees = make([]plan.Node, len(e.children))
		}
		for i, cgid := range e.children {
			// A self-referential spelling cannot be materialized on
			// this path; another expression of the group covers it.
			if onPath[cgid] {
				usable = false
				break
			}
			sub := m.groups[cgid]
			if err := m.extractGroup(sub, c, onPath); err != nil {
				return err
			}
			if sub.winner == nil {
				usable = false
				break
			}
			trees[i] = sub.winner
			lb += sub.winnerCost
		}
		if !usable {
			continue
		}
		if lb >= incumbent {
			if reg != nil {
				reg.Counter("memo.pruned").Inc()
			}
			continue
		}
		cand := e.node
		if len(trees) > 0 {
			cand = e.node.WithChildren(trees)
		}
		cost, within, err := c.PlanCostBound(cand, incumbent)
		if err != nil {
			return err
		}
		if !within {
			if reg != nil {
				reg.Counter("memo.pruned").Inc()
			}
			continue
		}
		incumbent, winner, winnerExpr = cost, cand, eid
	}
	g.winner, g.winnerCost, g.winnerExpr = winner, incumbent, winnerExpr
	g.extracted = true
	return nil
}

// Derivation reconstructs the identity-rule chain justifying a
// group's winner, children first: for every group of the winning
// tree (visited once, post-order over the winner expressions), the
// rules that derived its winning expression from the group's seed,
// oldest first. The chain replays the provenance the saturation
// engine's trace records, assembled from the memo's per-expression
// (rule, parent expression) records instead of a whole-tree map.
func (m *Memo) Derivation(gid GroupID) []string {
	visited := make(map[GroupID]bool)
	var walk func(GroupID) []string
	walk = func(gid GroupID) []string {
		if visited[gid] {
			return nil
		}
		visited[gid] = true
		g := m.groups[gid]
		if !g.extracted || g.winnerExpr < 0 {
			return nil
		}
		e := m.exprs[g.winnerExpr]
		var out []string
		for _, cg := range e.children {
			out = append(out, walk(cg)...)
		}
		return append(out, m.provChain(e)...)
	}
	return walk(gid)
}

// provChain walks an expression's provenance back to its group's seed
// and returns the producing rules oldest-first.
func (m *Memo) provChain(e *expr) []string {
	var rev []string
	for e.rule != "" {
		rev = append(rev, e.rule)
		if e.from < 0 {
			break
		}
		e = m.exprs[e.from]
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}
