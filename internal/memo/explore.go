package memo

import (
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/guard"
	"repro/internal/obs"
	"repro/internal/plan"
)

// taskKind selects which rule subset a binding is fed to.
type taskKind uint8

const (
	nodeKind  taskKind = iota // ScopeNode rules on the canonical expression
	childKind                 // ScopeChild rules on a one-slot binding
	treeKind                  // ScopeJoinTree rules on a pure join tree
)

// task is one binding to apply rules to. Tasks are generated in a
// deterministic order against the pre-wave memo state, so the merge —
// which ingests results in task order — produces the same memo for
// any worker count.
type task struct {
	group   GroupID
	from    exprID
	kind    taskKind
	binding plan.Node
}

// altResult is one rule firing's output.
type altResult struct {
	node plan.Node
	rule string
}

// workers resolves Options.Workers to a goroutine count.
func (o Options) workers() int {
	switch {
	case o.Workers < 0:
		return runtime.GOMAXPROCS(0)
	case o.Workers == 0:
		return 1
	default:
		return o.Workers
	}
}

// Explore saturates the groups under the rule set: waves of bindings
// are generated incrementally (per-expression consumed counters make
// each binding appear exactly once across the whole run), rules are
// applied — serially or across Options.Workers goroutines — and
// results are merged back single-threaded in task order. The loop
// reaches a fixpoint when a wave generates no bindings, or stops at
// MaxExprs or a tripped expression budget (both cap the memo rather
// than erroring — extraction still covers everything admitted). A
// non-nil error means the run was aborted: cancellation, an injected
// fault, or a contained rule-application panic.
//
// The run carries pprof labels engine=memo phase=explore, which the
// rule-application worker goroutines inherit, so CPU profiles split
// exploration from extraction and execution.
func (m *Memo) Explore() (err error) {
	obs.WithPhase(m.opts.Budget.Context(), "memo", "explore", func() {
		err = m.explore()
	})
	return err
}

func (m *Memo) explore() error {
	reg := m.obs()
	b := m.opts.Budget
	if !m.chargeInit {
		m.chargeInit = true
		m.charged = len(m.exprs) + m.jtCount
	}
	for !m.capped {
		if err := b.Cancelled(); err != nil {
			return err
		}
		if err := guard.Hit(guard.PointMemoWave); err != nil {
			return err
		}
		tasks := m.collectTasks()
		if m.chargeDelta() != nil {
			m.markCapped(CappedBudget)
			return nil
		}
		if len(tasks) == 0 {
			break
		}
		if reg != nil {
			reg.Counter("memo.waves").Inc()
		}
		results, err := m.apply(tasks)
		if err != nil {
			return err
		}
		for i, t := range tasks {
			g := m.groups[t.group]
			for _, alt := range results[i] {
				m.addResult(g, alt.node, alt.rule, t.from)
				if m.chargeDelta() != nil {
					m.markCapped(CappedBudget)
					return nil
				}
				if len(m.exprs)+m.jtCount >= m.opts.MaxExprs {
					m.markCapped(CappedMaxExprs)
					return nil
				}
			}
		}
	}
	return nil
}

// chargeDelta charges the memo's growth since the last check against
// the expression budget. addResult admissions pull whole subtrees in
// through Add, so the charge is the observed total delta rather than
// one per call.
func (m *Memo) chargeDelta() error {
	total := len(m.exprs) + m.jtCount
	d := total - m.charged
	if d <= 0 {
		return nil
	}
	m.charged = total
	return m.opts.Budget.ChargeExprs(int64(d))
}

// collectTasks advances every expression's binding cursors and
// returns the new wave's bindings: expressions created since the last
// wave contribute their canonical ScopeNode binding, every expression
// contributes one ScopeChild binding per (slot, newly admitted child
// expression), and groups with grown pure-join-tree lists contribute
// the new trees to the ScopeJoinTree rules.
func (m *Memo) collectTasks() []task {
	var tasks []task
	for _, e := range m.exprs {
		if !e.nodeDone {
			e.nodeDone = true
			if len(m.nodeRules) > 0 {
				tasks = append(tasks, task{group: e.group, from: e.id, kind: nodeKind, binding: e.node})
			}
		}
		if len(m.chldRules) == 0 {
			continue
		}
		ch := e.node.Children()
		for s := range e.children {
			cg := m.groups[e.children[s]]
			start := e.consumed[s]
			// Slot 0's first binding is e.node itself (the child's
			// first expression IS the representative); the same tree
			// would reappear at every later slot's first binding, so
			// those start at 1.
			if s > 0 && start == 0 {
				start = 1
			}
			for j := start; j < len(cg.exprs); j++ {
				f := m.exprs[cg.exprs[j]]
				binding := e.node
				if f.node != ch[s] {
					nch := make([]plan.Node, len(ch))
					copy(nch, ch)
					nch[s] = f.node
					binding = e.node.WithChildren(nch)
				}
				tasks = append(tasks, task{group: e.group, from: e.id, kind: childKind, binding: binding})
			}
			e.consumed[s] = len(cg.exprs)
		}
	}
	if len(m.treeRules) > 0 {
		m.growJoinTrees()
		for _, g := range m.groups {
			for i := g.jtProcessed; i < len(g.joinTrees); i++ {
				jt := g.joinTrees[i]
				if _, isJoin := jt.tree.(*plan.Join); isJoin {
					tasks = append(tasks, task{group: g.id, from: jt.from, kind: treeKind, binding: jt.tree})
				}
			}
			g.jtProcessed = len(g.joinTrees)
		}
	}
	return tasks
}

// growJoinTrees extends every group's list of pure join-over-scan
// materializations: a Scan expression contributes itself, and a Join
// expression contributes the cross product of its child groups' lists
// (combined incrementally via per-expression consumed counts). One
// call propagates growth one level up; the wave loop carries it to a
// fixpoint.
func (m *Memo) growJoinTrees() {
	for _, e := range m.exprs {
		if m.capped {
			return
		}
		g := m.groups[e.group]
		switch e.node.(type) {
		case *plan.Scan:
			if e.jtConsumed == nil {
				e.jtConsumed = []int{0}
				m.jtAdd(g, e.node, e.id)
			}
		case *plan.Join:
			if e.jtConsumed == nil {
				e.jtConsumed = []int{0, 0}
			}
			lg, rg := m.groups[e.children[0]], m.groups[e.children[1]]
			n1, n2 := e.jtConsumed[0], e.jtConsumed[1]
			l1, l2 := len(lg.joinTrees), len(rg.joinTrees)
			// Delta rectangle: already-seen left × new right, then new
			// left × all right — deterministic and exhaustive.
			for i := 0; i < n1 && !m.capped; i++ {
				for j := n2; j < l2 && !m.capped; j++ {
					m.jtCombine(g, e, lg.joinTrees[i].tree, rg.joinTrees[j].tree)
				}
			}
			for i := n1; i < l1 && !m.capped; i++ {
				for j := 0; j < l2 && !m.capped; j++ {
					m.jtCombine(g, e, lg.joinTrees[i].tree, rg.joinTrees[j].tree)
				}
			}
			e.jtConsumed[0], e.jtConsumed[1] = l1, l2
		}
	}
}

func (m *Memo) jtCombine(g *group, e *expr, l, r plan.Node) {
	m.jtAdd(g, e.node.WithChildren([]plan.Node{l, r}), e.id)
}

// jtAdd records a pure-join-tree materialization. Each one counts
// against the MaxExprs budget: capped saturation stops at a bounded
// number of materialized plans, and the join-tree lists are the memo
// path's only full-tree materializations, so charging them to the
// same budget keeps a capped memo run's work comparable.
func (m *Memo) jtAdd(g *group, t plan.Node, from exprID) {
	if g.jtSet == nil {
		g.jtSet = make(map[string]bool)
	}
	k := plan.Key(t)
	if g.jtSet[k] {
		return
	}
	g.jtSet[k] = true
	g.joinTrees = append(g.joinTrees, jtEntry{tree: t, from: from})
	m.jtCount++
	if len(m.exprs)+m.jtCount >= m.opts.MaxExprs {
		m.markCapped(CappedMaxExprs)
	}
}

// markCapped flags the early stop once, recording why and bumping
// memo.capped.
func (m *Memo) markCapped(reason string) {
	if m.capped {
		return
	}
	m.capped = true
	m.cappedBy = reason
	if reg := m.obs(); reg != nil {
		reg.Counter("memo.capped").Inc()
	}
}

// apply runs the wave's rule applications, fanning out across workers
// when configured. Each task is independent and reads only pre-wave
// memo state, so results land in per-task slots and the caller's
// in-order merge is deterministic. Fingerprints of result trees are
// forced inside the workers so the serial merge finds them cached.
// Each task runs under guard.Safely (a boundary defer cannot see a
// worker goroutine's panic); the lowest-index failure wins, so the
// surfaced error is the same for any scheduling.
func (m *Memo) apply(tasks []task) ([][]altResult, error) {
	results := make([][]altResult, len(tasks))
	errs := make([]error, len(tasks))
	workers := m.opts.workers()
	if workers > len(tasks) {
		workers = len(tasks)
	}
	if workers <= 1 {
		for i, t := range tasks {
			results[i], errs[i] = m.applyOne(t)
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= len(tasks) {
						return
					}
					results[i], errs[i] = m.applyOne(tasks[i])
				}
			}()
		}
		wg.Wait()
	}
	for _, e := range errs {
		if e != nil {
			return results, e
		}
	}
	return results, nil
}

func (m *Memo) applyOne(t task) ([]altResult, error) {
	var rules = m.chldRules
	switch t.kind {
	case nodeKind:
		rules = m.nodeRules
	case treeKind:
		rules = m.treeRules
	}
	reg := m.obs()
	var out []altResult
	err := guard.Safely("explore", plan.Key(t.binding), reg, func() error {
		if e := guard.Hit(guard.PointRuleApply); e != nil {
			return e
		}
		for _, r := range rules {
			for _, alt := range r.Apply(t.binding) {
				plan.Key(alt) // warm the fingerprint cache while parallel
				if reg != nil {
					reg.Counter("optimizer.rule_applied." + r.Name).Inc()
				}
				out = append(out, altResult{node: alt, rule: r.Name})
			}
		}
		return nil
	})
	return out, err
}
