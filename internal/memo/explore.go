package memo

import (
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/plan"
)

// taskKind selects which rule subset a binding is fed to.
type taskKind uint8

const (
	nodeKind taskKind = iota // ScopeNode rules on the canonical expression
	childKind                // ScopeChild rules on a one-slot binding
	treeKind                 // ScopeJoinTree rules on a pure join tree
)

// task is one binding to apply rules to. Tasks are generated in a
// deterministic order against the pre-wave memo state, so the merge —
// which ingests results in task order — produces the same memo for
// any worker count.
type task struct {
	group   GroupID
	from    exprID
	kind    taskKind
	binding plan.Node
}

// altResult is one rule firing's output.
type altResult struct {
	node plan.Node
	rule string
}

// workers resolves Options.Workers to a goroutine count.
func (o Options) workers() int {
	switch {
	case o.Workers < 0:
		return runtime.GOMAXPROCS(0)
	case o.Workers == 0:
		return 1
	default:
		return o.Workers
	}
}

// Explore saturates the groups under the rule set: waves of bindings
// are generated incrementally (per-expression consumed counters make
// each binding appear exactly once across the whole run), rules are
// applied — serially or across Options.Workers goroutines — and
// results are merged back single-threaded in task order. The loop
// reaches a fixpoint when a wave generates no bindings, or stops at
// MaxExprs.
func (m *Memo) Explore() {
	reg := m.obs()
	for !m.capped {
		tasks := m.collectTasks()
		if len(tasks) == 0 {
			break
		}
		if reg != nil {
			reg.Counter("memo.waves").Inc()
		}
		results := m.apply(tasks)
		for i, t := range tasks {
			g := m.groups[t.group]
			for _, alt := range results[i] {
				m.addResult(g, alt.node, alt.rule, t.from)
				if len(m.exprs)+m.jtCount >= m.opts.MaxExprs {
					m.markCapped()
					return
				}
			}
		}
	}
}

// collectTasks advances every expression's binding cursors and
// returns the new wave's bindings: expressions created since the last
// wave contribute their canonical ScopeNode binding, every expression
// contributes one ScopeChild binding per (slot, newly admitted child
// expression), and groups with grown pure-join-tree lists contribute
// the new trees to the ScopeJoinTree rules.
func (m *Memo) collectTasks() []task {
	var tasks []task
	for _, e := range m.exprs {
		if !e.nodeDone {
			e.nodeDone = true
			if len(m.nodeRules) > 0 {
				tasks = append(tasks, task{group: e.group, from: e.id, kind: nodeKind, binding: e.node})
			}
		}
		if len(m.chldRules) == 0 {
			continue
		}
		ch := e.node.Children()
		for s := range e.children {
			cg := m.groups[e.children[s]]
			start := e.consumed[s]
			// Slot 0's first binding is e.node itself (the child's
			// first expression IS the representative); the same tree
			// would reappear at every later slot's first binding, so
			// those start at 1.
			if s > 0 && start == 0 {
				start = 1
			}
			for j := start; j < len(cg.exprs); j++ {
				f := m.exprs[cg.exprs[j]]
				binding := e.node
				if f.node != ch[s] {
					nch := make([]plan.Node, len(ch))
					copy(nch, ch)
					nch[s] = f.node
					binding = e.node.WithChildren(nch)
				}
				tasks = append(tasks, task{group: e.group, from: e.id, kind: childKind, binding: binding})
			}
			e.consumed[s] = len(cg.exprs)
		}
	}
	if len(m.treeRules) > 0 {
		m.growJoinTrees()
		for _, g := range m.groups {
			for i := g.jtProcessed; i < len(g.joinTrees); i++ {
				jt := g.joinTrees[i]
				if _, isJoin := jt.tree.(*plan.Join); isJoin {
					tasks = append(tasks, task{group: g.id, from: jt.from, kind: treeKind, binding: jt.tree})
				}
			}
			g.jtProcessed = len(g.joinTrees)
		}
	}
	return tasks
}

// growJoinTrees extends every group's list of pure join-over-scan
// materializations: a Scan expression contributes itself, and a Join
// expression contributes the cross product of its child groups' lists
// (combined incrementally via per-expression consumed counts). One
// call propagates growth one level up; the wave loop carries it to a
// fixpoint.
func (m *Memo) growJoinTrees() {
	for _, e := range m.exprs {
		if m.capped {
			return
		}
		g := m.groups[e.group]
		switch e.node.(type) {
		case *plan.Scan:
			if e.jtConsumed == nil {
				e.jtConsumed = []int{0}
				m.jtAdd(g, e.node, e.id)
			}
		case *plan.Join:
			if e.jtConsumed == nil {
				e.jtConsumed = []int{0, 0}
			}
			lg, rg := m.groups[e.children[0]], m.groups[e.children[1]]
			n1, n2 := e.jtConsumed[0], e.jtConsumed[1]
			l1, l2 := len(lg.joinTrees), len(rg.joinTrees)
			// Delta rectangle: already-seen left × new right, then new
			// left × all right — deterministic and exhaustive.
			for i := 0; i < n1 && !m.capped; i++ {
				for j := n2; j < l2 && !m.capped; j++ {
					m.jtCombine(g, e, lg.joinTrees[i].tree, rg.joinTrees[j].tree)
				}
			}
			for i := n1; i < l1 && !m.capped; i++ {
				for j := 0; j < l2 && !m.capped; j++ {
					m.jtCombine(g, e, lg.joinTrees[i].tree, rg.joinTrees[j].tree)
				}
			}
			e.jtConsumed[0], e.jtConsumed[1] = l1, l2
		}
	}
}

func (m *Memo) jtCombine(g *group, e *expr, l, r plan.Node) {
	m.jtAdd(g, e.node.WithChildren([]plan.Node{l, r}), e.id)
}

// jtAdd records a pure-join-tree materialization. Each one counts
// against the MaxExprs budget: capped saturation stops at a bounded
// number of materialized plans, and the join-tree lists are the memo
// path's only full-tree materializations, so charging them to the
// same budget keeps a capped memo run's work comparable.
func (m *Memo) jtAdd(g *group, t plan.Node, from exprID) {
	if g.jtSet == nil {
		g.jtSet = make(map[string]bool)
	}
	k := plan.Key(t)
	if g.jtSet[k] {
		return
	}
	g.jtSet[k] = true
	g.joinTrees = append(g.joinTrees, jtEntry{tree: t, from: from})
	m.jtCount++
	if len(m.exprs)+m.jtCount >= m.opts.MaxExprs {
		m.markCapped()
	}
}

// markCapped flags the budget stop once, bumping memo.capped.
func (m *Memo) markCapped() {
	if m.capped {
		return
	}
	m.capped = true
	if reg := m.obs(); reg != nil {
		reg.Counter("memo.capped").Inc()
	}
}

// apply runs the wave's rule applications, fanning out across workers
// when configured. Each task is independent and reads only pre-wave
// memo state, so results land in per-task slots and the caller's
// in-order merge is deterministic. Fingerprints of result trees are
// forced inside the workers so the serial merge finds them cached.
func (m *Memo) apply(tasks []task) [][]altResult {
	results := make([][]altResult, len(tasks))
	workers := m.opts.workers()
	if workers > len(tasks) {
		workers = len(tasks)
	}
	if workers <= 1 {
		for i, t := range tasks {
			results[i] = m.applyOne(t)
		}
		return results
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(tasks) {
					return
				}
				results[i] = m.applyOne(tasks[i])
			}
		}()
	}
	wg.Wait()
	return results
}

func (m *Memo) applyOne(t task) []altResult {
	var rules = m.chldRules
	switch t.kind {
	case nodeKind:
		rules = m.nodeRules
	case treeKind:
		rules = m.treeRules
	}
	reg := m.obs()
	var out []altResult
	for _, r := range rules {
		for _, alt := range r.Apply(t.binding) {
			plan.Key(alt) // warm the fingerprint cache while parallel
			if reg != nil {
				reg.Counter("optimizer.rule_applied." + r.Name).Inc()
			}
			out = append(out, altResult{node: alt, rule: r.Name})
		}
	}
	return out
}
