package memo

import (
	"fmt"
	"math"
	"time"

	xpr "repro/internal/expr"
	"repro/internal/guard"
	"repro/internal/obs"
	"repro/internal/plan"
	"repro/internal/schema"
	"repro/internal/value"
)

// OrderCoster extends Coster with catalog knowledge of base-scan sort
// orders (satisfied by stats.Session). A plain Coster still works with
// ExtractOrdered — scans are then assumed unsorted and every required
// order is met by an enforcer Sort.
type OrderCoster interface {
	Coster
	ScanOrder(*plan.Scan) plan.Order
}

// ExtractOrdered is Extract under a physical property requirement: the
// returned plan's delivered sort order must satisfy required. The memo
// stays purely logical — groups and expressions are untouched — and
// the requirement lives in per-extraction (group, order) *optimization
// contexts*, each answering "cheapest materialization of this group
// whose output is sorted by this order".
//
// Per context, three kinds of candidates compete:
//
//   - implementations that propagate the requirement: Select and
//     non-distinct Project pass it to their input; an equi Join can
//     become a MergeJoin whose inputs are required in key order; a
//     GroupBy can become a StreamAgg whose input is required in group
//     key order;
//   - the group's order-free winner, when its delivered order happens
//     to satisfy the requirement anyway (a sorted base scan under a
//     chain of order-preserving operators) — the redundant-sort
//     *elimination* case;
//   - an enforcer: an explicit Sort (Origin "enforcer") over the
//     group's order-free winner, which makes every context feasible
//     and lets the cost model charge the n log n exactly where the
//     sort would run.
//
// The empty requirement delegates to Extract's machinery verbatim, so
// order-free extraction — and the memo-vs-saturation equivalence the
// property suites pin — is bit-for-bit unchanged. Branch-and-bound
// carries over: child-context winners lower-bound each candidate, and
// costing bails through PlanCostBound once past the incumbent
// (memo.pruned counts both). memo.order.contexts counts the ordered
// contexts opened.
func (m *Memo) ExtractOrdered(roots []GroupID, c Coster, required plan.Order) (best Best, err error) {
	if len(required) == 0 {
		return m.Extract(roots, c)
	}
	obs.WithPhase(m.opts.Budget.Context(), "memo", "cost", func() {
		best, err = m.extractOrdered(roots, c, required)
	})
	return best, err
}

func (m *Memo) extractOrdered(roots []GroupID, c Coster, required plan.Order) (Best, error) {
	start := time.Now()
	defer func() {
		if reg := m.obs(); reg != nil {
			reg.Counter("memo.extract_ns").Add(time.Since(start).Nanoseconds())
		}
	}()
	x := &ordExtractor{
		m:          m,
		c:          c,
		wins:       make(map[ordCtxKey]*ordWin),
		onPath:     make(map[ordCtxKey]bool),
		legacyPath: make([]bool, len(m.groups)),
	}
	if oc, ok := c.(OrderCoster); ok {
		x.src = oc.ScanOrder
	}
	best := Best{Cost: math.Inf(1), Root: -1}
	for i, gid := range roots {
		w, err := x.context(m.groups[gid], required)
		if err != nil {
			return Best{}, err
		}
		if w != nil && w.cost < best.Cost {
			best = Best{Plan: w.plan, Cost: w.cost, Group: gid, Root: i}
		}
	}
	if best.Plan == nil {
		return Best{}, fmt.Errorf("memo: no extractable plan delivering %s among %d root groups", required, len(roots))
	}
	return best, nil
}

// ordCtxKey identifies one (group, required order) optimization
// context within an extraction run.
type ordCtxKey struct {
	gid GroupID
	ord string
}

// ordWin is a context's winner.
type ordWin struct {
	plan plan.Node
	cost float64
}

// ordExtractor holds the per-run context table. Contexts are created
// per ExtractOrdered call — unlike group winners they are not cached
// on the memo, because the same memo may be extracted under different
// requirements.
type ordExtractor struct {
	m   *Memo
	c   Coster
	src plan.OrderSource
	// wins caches completed contexts (nil value: context infeasible).
	wins map[ordCtxKey]*ordWin
	// onPath guards against cyclic spellings, per context — the
	// ordered analog of extractGroup's onPath slice.
	onPath map[ordCtxKey]bool
	// legacyPath is the onPath slice handed to extractGroup for
	// empty-requirement delegation; it is all-false between calls
	// (legacy extraction completes synchronously and never re-enters
	// the ordered extractor).
	legacyPath []bool
}

// base extracts g's order-free winner through the legacy machinery.
func (x *ordExtractor) base(g *group) (*ordWin, error) {
	if err := x.m.extractGroup(g, x.c, x.legacyPath); err != nil {
		return nil, err
	}
	if g.winner == nil {
		return nil, nil
	}
	return &ordWin{plan: g.winner, cost: g.winnerCost}, nil
}

// context computes the cheapest materialization of g whose delivered
// order satisfies req (non-empty). A nil win with nil error means the
// context is infeasible or on the current recursion path.
func (x *ordExtractor) context(g *group, req plan.Order) (*ordWin, error) {
	key := ordCtxKey{gid: g.id, ord: req.Key()}
	if w, ok := x.wins[key]; ok {
		return w, nil
	}
	if x.onPath[key] {
		return nil, nil
	}
	// Context entry mirrors extractGroup's deterministic guard point:
	// contexts open in the same order for any configuration.
	if err := x.m.opts.Budget.Cancelled(); err != nil {
		return nil, err
	}
	if err := guard.Hit(guard.PointMemoExtract); err != nil {
		return nil, err
	}
	x.onPath[key] = true
	defer delete(x.onPath, key)
	reg := x.m.obs()
	if reg != nil {
		reg.Counter("memo.order.contexts").Inc()
	}

	incumbent := math.Inf(1)
	var winner plan.Node
	// try costs one candidate implementation: extract each child under
	// its required order, lower-bound by the child winners, build, check
	// the delivered order, and cost under the incumbent bound.
	try := func(cgids []GroupID, childReqs []plan.Order, build func([]plan.Node) plan.Node) error {
		lb := 0.0
		trees := make([]plan.Node, len(cgids))
		for i, cgid := range cgids {
			sub := x.m.groups[cgid]
			var cw *ordWin
			var err error
			if len(childReqs[i]) == 0 {
				cw, err = x.base(sub)
			} else {
				cw, err = x.context(sub, childReqs[i])
			}
			if err != nil {
				return err
			}
			if cw == nil {
				return nil // infeasible or cyclic on this path
			}
			trees[i] = cw.plan
			lb += cw.cost
		}
		if lb >= incumbent {
			if reg != nil {
				reg.Counter("memo.pruned").Inc()
			}
			return nil
		}
		var cand plan.Node
		if len(trees) > 0 {
			cand = build(trees)
		} else {
			cand = build(nil)
		}
		if !plan.DeliveredOrder(cand, x.src).Satisfies(req) {
			return nil
		}
		cost, within, err := x.c.PlanCostBound(cand, incumbent)
		if err != nil {
			return err
		}
		if !within {
			if reg != nil {
				reg.Counter("memo.pruned").Inc()
			}
			return nil
		}
		incumbent, winner = cost, cand
		return nil
	}

	for _, eid := range g.exprs {
		e := x.m.exprs[eid]
		for _, im := range implementations(e, req) {
			if err := try(e.children, im.childReqs, im.build); err != nil {
				return nil, err
			}
		}
	}

	// Enforcer: an explicit Sort over the group's order-free winner.
	// Always a candidate, so a feasible group makes every context over
	// it feasible; the cost model charges the n log n through the Sort
	// node itself.
	bw, err := x.base(g)
	if err != nil {
		return nil, err
	}
	if bw != nil {
		if bw.cost >= incumbent {
			if reg != nil {
				reg.Counter("memo.pruned").Inc()
			}
		} else {
			cand := plan.NewSortOrigin(append([]plan.SortKey(nil), req...), -1, bw.plan, plan.SortOriginEnforcer)
			cost, within, cerr := x.c.PlanCostBound(cand, incumbent)
			if cerr != nil {
				return nil, cerr
			}
			if within {
				incumbent, winner = cost, cand
			} else if reg != nil {
				reg.Counter("memo.pruned").Inc()
			}
		}
	}

	var w *ordWin
	if winner != nil {
		w = &ordWin{plan: winner, cost: incumbent}
	}
	x.wins[key] = w
	return w, nil
}

// ordImpl is one way to implement an expression under a required
// order: per-child requirements plus a builder over the child winners.
type ordImpl struct {
	childReqs []plan.Order
	build     func([]plan.Node) plan.Node
}

// implementations enumerates the candidate implementations of e in a
// context requiring req. The order-free default — legacy child winners
// under the expression's own operator — is always first: it wins
// whenever the children happen to deliver the order already (the
// elimination case, e.g. a sorted scan under order-preserving
// operators). The delivered-order check in the caller rejects any
// candidate that does not actually satisfy req, so enumeration here
// may be generous.
func implementations(e *expr, req plan.Order) []ordImpl {
	empty := make([]plan.Order, len(e.children))
	out := []ordImpl{{
		childReqs: empty,
		build: func(trees []plan.Node) plan.Node {
			if len(trees) == 0 {
				return e.node
			}
			return e.node.WithChildren(trees)
		},
	}}
	switch n := e.node.(type) {
	case *plan.Select:
		// Filtering preserves order: require the order from the input.
		out = append(out, ordImpl{
			childReqs: []plan.Order{req},
			build:     func(trees []plan.Node) plan.Node { return e.node.WithChildren(trees) },
		})
	case *plan.Project:
		if !n.Distinct && orderWithin(req, n.Attrs) {
			out = append(out, ordImpl{
				childReqs: []plan.Order{req},
				build:     func(trees []plan.Node) plan.Node { return e.node.WithChildren(trees) },
			})
		}
	case *plan.Join:
		// Only Inner and Left merge joins deliver their left-key
		// order; the other kinds cannot satisfy a requirement here.
		if n.Kind != plan.InnerJoin && n.Kind != plan.LeftJoin {
			break
		}
		lk, rk := equiKeys(n)
		if len(lk) == 0 {
			break
		}
		for _, keys := range mergeKeyVariants(lk, rk, req) {
			keys := keys
			mj := func(trees []plan.Node) plan.Node {
				return plan.NewMergeJoin(n.Kind, n.Pred, keys.lk, keys.rk, keys.desc, trees[0], trees[1])
			}
			out = append(out, ordImpl{
				childReqs: []plan.Order{keys.leftOrder(), keys.rightOrder()},
				build:     mj,
			})
		}
	case *plan.GroupBy:
		if len(n.Keys) == 0 {
			break
		}
		for _, inOrder := range streamAggVariants(n.Keys, req) {
			inOrder := inOrder
			out = append(out, ordImpl{
				childReqs: []plan.Order{inOrder},
				build: func(trees []plan.Node) plan.Node {
					return plan.NewStreamAgg(n.Keys, n.Aggs, inOrder, trees[0])
				},
			})
		}
	}
	return out
}

// orderWithin reports whether every key attribute of o is among attrs.
func orderWithin(o plan.Order, attrs []schema.Attribute) bool {
	set := make(map[schema.Attribute]bool, len(attrs))
	for _, a := range attrs {
		set[a] = true
	}
	for _, k := range o {
		if !set[k.Attr] {
			return false
		}
	}
	return true
}

// equiKeys extracts the column = column equi conjuncts of a join,
// sided by the base relations under each input (expression children
// are group representatives, so base relation sets are those of the
// whole equivalence class).
func equiKeys(j *plan.Join) (lk, rk []schema.Attribute) {
	lrels := plan.BaseRelSet(j.L)
	rrels := plan.BaseRelSet(j.R)
	for _, c := range xpr.Conjuncts(j.Pred) {
		cmp, ok := c.(xpr.Cmp)
		if !ok || cmp.Op != value.EQ {
			continue
		}
		lc, lok := cmp.L.(xpr.Col)
		rc, rok := cmp.R.(xpr.Col)
		if !lok || !rok {
			continue
		}
		switch {
		case lrels[lc.Attr.Rel] && rrels[rc.Attr.Rel]:
			lk = append(lk, lc.Attr)
			rk = append(rk, rc.Attr)
		case rrels[lc.Attr.Rel] && lrels[rc.Attr.Rel]:
			lk = append(lk, rc.Attr)
			rk = append(rk, lc.Attr)
		}
	}
	return lk, rk
}

// mergeKeys is one merge-join key ordering.
type mergeKeys struct {
	lk, rk []schema.Attribute
	desc   []bool
}

func (k mergeKeys) leftOrder() plan.Order {
	o := make(plan.Order, len(k.lk))
	for i, a := range k.lk {
		o[i] = plan.SortKey{Attr: a, Desc: k.desc[i]}
	}
	return o
}

func (k mergeKeys) rightOrder() plan.Order {
	o := make(plan.Order, len(k.rk))
	for i, a := range k.rk {
		o[i] = plan.SortKey{Attr: a, Desc: k.desc[i]}
	}
	return o
}

// mergeKeyVariants enumerates merge key orderings worth trying: the
// natural all-ascending order of the equi conjuncts, plus (when the
// requirement's keys are a subset of the left join keys) a
// requirement-aligned permutation whose left order satisfies req by
// construction — the arrangement that makes a root ORDER BY free.
func mergeKeyVariants(lk, rk []schema.Attribute, req plan.Order) []mergeKeys {
	natural := mergeKeys{lk: lk, rk: rk, desc: make([]bool, len(lk))}
	out := []mergeKeys{natural}
	if len(req) > len(lk) {
		return out
	}
	aligned := mergeKeys{}
	used := make([]bool, len(lk))
	for _, k := range req {
		found := -1
		for i, a := range lk {
			if !used[i] && a == k.Attr {
				found = i
				break
			}
		}
		if found < 0 {
			return out
		}
		used[found] = true
		aligned.lk = append(aligned.lk, lk[found])
		aligned.rk = append(aligned.rk, rk[found])
		aligned.desc = append(aligned.desc, k.Desc)
	}
	for i := range lk {
		if !used[i] {
			aligned.lk = append(aligned.lk, lk[i])
			aligned.rk = append(aligned.rk, rk[i])
			aligned.desc = append(aligned.desc, false)
		}
	}
	if aligned.leftOrder().Key() != natural.leftOrder().Key() {
		out = append(out, aligned)
	}
	return out
}

// streamAggVariants enumerates input orders for a streaming aggregation
// over keys: the keys in declaration order ascending, plus (when the
// requirement's attributes all are group keys) a requirement-aligned
// order that makes the aggregation's output satisfy req directly.
func streamAggVariants(keys []schema.Attribute, req plan.Order) []plan.Order {
	natural := plan.OrderBy(keys...)
	out := []plan.Order{natural}
	if len(req) > len(keys) {
		return out
	}
	aligned := make(plan.Order, 0, len(keys))
	used := make([]bool, len(keys))
	for _, k := range req {
		found := -1
		for i, a := range keys {
			if !used[i] && a == k.Attr {
				found = i
				break
			}
		}
		if found < 0 {
			return out
		}
		used[found] = true
		aligned = append(aligned, k)
	}
	for i, a := range keys {
		if !used[i] {
			aligned = append(aligned, plan.SortKey{Attr: a})
		}
	}
	if aligned.Key() != natural.Key() {
		out = append(out, aligned)
	}
	return out
}
