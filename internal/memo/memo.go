// Package memo implements a memo table of equivalence groups for the
// optimizer's enumeration (Section 4): instead of materializing every
// member of a query's equivalence class as a full plan tree (the
// core.Saturate approach), the memo stores each distinct subtree
// class once as a *group* and each distinct operator-over-groups
// shape once as an *expression*, so shared subtrees are derived,
// stored and costed once regardless of how many enclosing plans use
// them.
//
// A group is keyed by subtree fingerprint (plan.Key of any member
// tree). An expression is one operator whose children are group
// references; it is represented concretely as a real plan.Node whose
// child subtrees are the *representatives* of the child groups, which
// keeps every expression a genuine member tree — rules apply to it
// directly, plan.Key canonicalizes it, and stats cost it — while
// child sharing makes it one shallow node.
//
// Exploration saturates the groups under a core.Rule set using the
// rules' declared RuleScope to build group-local *bindings*: a
// ScopeNode rule sees each expression once, a ScopeChild rule sees
// each (expression, child slot, child-group expression) combination,
// and a ScopeJoinTree rule sees each pure join-over-scan
// materialization of the group. Because every binding is itself a
// member tree, every rule result is equivalent to the group by
// construction; results are ingested back as new expressions (of the
// same group) with per-group dedup. Groups are never merged: when a
// result's expression shape already lives in another group, the shape
// is simply added to both — sound, and it keeps the reachable set
// exactly the positional-rewrite closure that Saturate computes
// rather than a congruence-closure superset of it.
package memo

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/guard"
	"repro/internal/obs"
	"repro/internal/plan"
)

// GroupID names one equivalence group.
type GroupID int

// exprID names one expression globally (across groups), in admission
// order. The exploration loop walks expressions by ascending id, which
// is what makes serial and parallel runs produce identical memos.
type exprID int

// expr is one operator-over-groups shape.
type expr struct {
	id    exprID
	group GroupID
	// node is the expression materialized over the child groups'
	// representative trees — a real member tree of the group whose
	// fingerprint canonicalizes the (operator, child groups) shape.
	node plan.Node
	// children are the groups the node's child subtrees belong to.
	children []GroupID
	// rule and from record provenance: the identity that produced
	// this expression and the expression its binding was rooted at.
	// Seed expressions (ingested query subtrees) have rule "" and
	// from -1.
	rule string
	from exprID

	// Exploration bookkeeping (owned by the single-threaded merge):
	// nodeDone marks the one ScopeNode binding as generated, consumed
	// counts per child slot how many of the child group's expressions
	// have been bound, and jtConsumed counts per child slot how many
	// of the child group's pure join trees have been combined.
	nodeDone   bool
	consumed   []int
	jtConsumed []int
}

// jtEntry is one pure join-over-scan materialization of a group,
// with the root expression it was combined under (for provenance).
type jtEntry struct {
	tree plan.Node
	from exprID
}

// group is one equivalence class.
type group struct {
	id    GroupID
	key   string // fingerprint of the first ingested member tree
	repr  plan.Node
	exprs []exprID
	// exprSet dedups expression shapes within the group.
	exprSet map[string]bool

	// joinTrees lists the group's pure join-over-scan
	// materializations in deterministic discovery order; jtSet dedups
	// them and jtProcessed counts how many have been fed to
	// ScopeJoinTree rules.
	joinTrees   []jtEntry
	jtSet       map[string]bool
	jtProcessed int

	// winner is set by Extract: the cheapest materialization of the
	// group, or nil when every expression was pruned or cyclic.
	winner     plan.Node
	winnerCost float64
	winnerExpr exprID
	extracted  bool
}

// Options configure a memo.
type Options struct {
	// Rules is the identity rule set; every rule must declare a
	// RuleScope other than ScopeUnknown (see Supports).
	Rules []core.Rule
	// MaxExprs caps the total materialization work — admitted
	// expressions plus pure-join-tree materializations built for
	// ScopeJoinTree rules (0 means 100000) — the memo analog of
	// SaturateOptions.MaxPlans, which bounds materialized plans.
	MaxExprs int
	// Workers sets the number of goroutines applying rules per
	// exploration wave; 0 and 1 run serially, < 0 means
	// runtime.GOMAXPROCS(0). Any value produces the identical memo:
	// bindings are generated as a deterministic task list against the
	// pre-wave state and results are merged single-threaded in task
	// order.
	Workers int
	// Obs, when non-nil, receives memo.groups, memo.exprs,
	// memo.dedup_hits, memo.waves, memo.capped and the per-rule
	// optimizer.rule_applied.<rule> / optimizer.rule_admitted.<rule>
	// counters. Extraction adds memo.pruned and memo.extract_ns.
	Obs *obs.Registry
	// Budget, when non-nil, governs exploration and extraction:
	// cancellation is checked at wave boundaries and per extracted
	// group (surfacing guard.ErrCancelled), and expression/join-tree
	// admissions past the seeds are charged against the expression
	// budget — tripping it caps the memo (CappedReason reports
	// CappedBudget) exactly like MaxExprs, so extraction still runs
	// over everything admitted.
	Budget *guard.Budget
}

// Memo is the group table.
type Memo struct {
	opts      Options
	nodeRules []core.Rule
	chldRules []core.Rule
	treeRules []core.Rule

	groups    []*group
	exprs     []*expr
	byKey     map[string]GroupID // member-tree fingerprint -> group
	byExprKey map[string]GroupID // expression fingerprint -> first owner
	jtCount   int                // join-tree materializations, for the MaxExprs budget
	capped    bool
	cappedBy  string

	// Budget charging state: seeds ingested before the first Explore
	// wave are free (extraction must always have a materializable
	// plan), so the baseline is snapshotted when exploration starts
	// and only growth past it is charged.
	chargeInit bool
	charged    int
}

// Supports reports whether every rule declares a group-local scope,
// and the names of those that do not. Optimizer callers use it to
// decide between the memo and whole-tree saturation.
func Supports(rules []core.Rule) (ok bool, unsupported []string) {
	for _, r := range rules {
		if r.Scope == core.ScopeUnknown {
			unsupported = append(unsupported, r.Name)
		}
	}
	return len(unsupported) == 0, unsupported
}

// New builds an empty memo. It fails when a rule lacks a declared
// scope, since such a rule cannot be bound group-locally.
func New(opts Options) (*Memo, error) {
	if opts.Rules == nil {
		opts.Rules = core.DefaultRules()
	}
	if opts.MaxExprs <= 0 {
		opts.MaxExprs = 100000
	}
	m := &Memo{
		opts:      opts,
		byKey:     make(map[string]GroupID),
		byExprKey: make(map[string]GroupID),
	}
	for _, r := range opts.Rules {
		switch r.Scope {
		case core.ScopeNode:
			m.nodeRules = append(m.nodeRules, r)
		case core.ScopeChild:
			m.chldRules = append(m.chldRules, r)
		case core.ScopeJoinTree:
			m.treeRules = append(m.treeRules, r)
		default:
			return nil, fmt.Errorf("memo: rule %q has no group-local scope", r.Name)
		}
	}
	return m, nil
}

// Groups returns the number of equivalence groups.
func (m *Memo) Groups() int { return len(m.groups) }

// Exprs returns the total number of admitted expressions.
func (m *Memo) Exprs() int { return len(m.exprs) }

// Cap reasons reported by CappedReason.
const (
	// CappedMaxExprs: exploration stopped at Options.MaxExprs.
	CappedMaxExprs = "max-exprs"
	// CappedBudget: the guard expression budget tripped.
	CappedBudget = "budget:exprs"
)

// Capped reports whether exploration stopped early (MaxExprs or a
// tripped expression budget).
func (m *Memo) Capped() bool { return m.capped }

// CappedReason reports why exploration stopped early ("" when it ran
// to fixpoint).
func (m *Memo) CappedReason() string { return m.cappedBy }

// RuleFirings counts, per rule, the expressions it admitted.
func (m *Memo) RuleFirings() map[string]int {
	out := make(map[string]int)
	for _, e := range m.exprs {
		if e.rule != "" {
			out[e.rule]++
		}
	}
	return out
}

// Add ingests a (sub)tree and returns its group, creating groups for
// it and every novel descendant subtree. Identical trees — and trees
// whose expression shape is already known — land in their existing
// group.
func (m *Memo) Add(n plan.Node) GroupID {
	k := plan.Key(n)
	if gid, ok := m.byKey[k]; ok {
		return gid
	}
	ch := n.Children()
	cgids := make([]GroupID, len(ch))
	for i, c := range ch {
		cgids[i] = m.Add(c)
	}
	en := m.canonical(n, ch, cgids)
	ek := plan.Key(en)
	if gid, ok := m.byExprKey[ek]; ok {
		// A different spelling of a known expression (some subtree was
		// a non-representative member): remember it so future ingests
		// of this exact tree short-circuit.
		m.byKey[k] = gid
		return gid
	}
	gid := GroupID(len(m.groups))
	g := &group{
		id:      gid,
		key:     ek,
		repr:    en,
		exprSet: make(map[string]bool),
	}
	m.groups = append(m.groups, g)
	m.byKey[k] = gid
	m.byKey[ek] = gid
	if m.obs() != nil {
		m.obs().Counter("memo.groups").Inc()
	}
	m.admit(g, en, ek, cgids, "", -1)
	return gid
}

// canonical rebuilds n with each child replaced by its group's
// representative, yielding the expression's canonical member tree.
func (m *Memo) canonical(n plan.Node, ch []plan.Node, cgids []GroupID) plan.Node {
	if len(ch) == 0 {
		return n
	}
	changed := false
	rch := make([]plan.Node, len(ch))
	for i, gid := range cgids {
		rch[i] = m.groups[gid].repr
		if rch[i] != ch[i] {
			changed = true
		}
	}
	if !changed {
		return n
	}
	return n.WithChildren(rch)
}

// admit appends a deduplicated expression to g. Callers have already
// checked g.exprSet (or know the group is fresh).
func (m *Memo) admit(g *group, en plan.Node, ek string, cgids []GroupID, rule string, from exprID) *expr {
	e := &expr{
		id:       exprID(len(m.exprs)),
		group:    g.id,
		node:     en,
		children: cgids,
		rule:     rule,
		from:     from,
		consumed: make([]int, len(cgids)),
	}
	m.exprs = append(m.exprs, e)
	g.exprs = append(g.exprs, e.id)
	g.exprSet[ek] = true
	if _, ok := m.byExprKey[ek]; !ok {
		m.byExprKey[ek] = g.id
	}
	if _, ok := m.byKey[ek]; !ok {
		m.byKey[ek] = g.id
	}
	if reg := m.obs(); reg != nil {
		reg.Counter("memo.exprs").Inc()
		if rule != "" {
			reg.Counter("optimizer.rule_admitted." + rule).Inc()
		}
	}
	return e
}

// addResult ingests one rule result tree as an expression of group g
// (the result is equivalent to g because the rule fired on one of g's
// member trees). Reports whether the expression was new.
func (m *Memo) addResult(g *group, n plan.Node, rule string, from exprID) bool {
	ch := n.Children()
	cgids := make([]GroupID, len(ch))
	for i, c := range ch {
		cgids[i] = m.Add(c)
	}
	en := m.canonical(n, ch, cgids)
	ek := plan.Key(en)
	if g.exprSet[ek] {
		if reg := m.obs(); reg != nil {
			reg.Counter("memo.dedup_hits").Inc()
		}
		return false
	}
	m.admit(g, en, ek, cgids, rule, from)
	if k := plan.Key(n); k != ek {
		if _, ok := m.byKey[k]; !ok {
			m.byKey[k] = g.id
		}
	}
	return true
}

func (m *Memo) obs() *obs.Registry { return m.opts.Obs }
