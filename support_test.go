package reorder

import (
	"fmt"
	"math/rand"

	"repro/internal/expr"
	"repro/internal/plan"
)

func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// chainQuery builds an n-relation left-outer-join chain whose final
// edge carries a complex predicate referencing r1, exercising the
// break-up machinery during enumeration benchmarks.
func chainQuery(n int) plan.Node {
	rel := func(i int) string { return fmt.Sprintf("r%d", i) }
	var node plan.Node = plan.NewScan(rel(1))
	for i := 2; i < n; i++ {
		node = plan.NewJoin(plan.LeftJoin, expr.EqCols(rel(i-1), "x", rel(i), "x"),
			node, plan.NewScan(rel(i)))
	}
	last := expr.And(
		expr.EqCols(rel(1), "y", rel(n), "y"),
		expr.EqCols(rel(n-1), "x", rel(n), "x"),
	)
	return plan.NewJoin(plan.LeftJoin, last, node, plan.NewScan(rel(n)))
}
