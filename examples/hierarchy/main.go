// Hierarchy: the paper's conclusion notes that "the outer join
// operation is used to traverse parent child hierarchies", so
// hierarchical applications benefit from its reorderings. This
// example models a two-level org chart — departments, teams, members
// — where teams may be empty and departments teamless, and asks for
// per-department member counts with a filter on the aggregated count
// referencing an outer join chain: exactly the aggregation-over-outer
// -join shape the paper's machinery reorders.
package main

import (
	"fmt"
	"log"
	"math/rand"

	reorder "repro"
	"repro/internal/relation"
	"repro/internal/value"
)

func main() {
	rng := rand.New(rand.NewSource(7))
	db := reorder.Database{}

	depts := relation.NewBuilder("dept", "id", "name")
	for i := 0; i < 12; i++ {
		depts.Row(value.NewInt(int64(i)), value.NewString(fmt.Sprintf("dept-%d", i)))
	}
	db["dept"] = depts.Relation()

	teams := relation.NewBuilder("team", "id", "dept_id", "name")
	for i := 0; i < 30; i++ {
		// Some departments get no teams (ids 10, 11 never drawn).
		teams.Row(value.NewInt(int64(i)), value.NewInt(int64(rng.Intn(10))),
			value.NewString(fmt.Sprintf("team-%d", i)))
	}
	db["team"] = teams.Relation()

	members := relation.NewBuilder("member", "id", "team_id")
	for i := 0; i < 400; i++ {
		// Some teams stay empty (ids 25..29 never drawn).
		members.Row(value.NewInt(int64(i)), value.NewInt(int64(rng.Intn(25))))
	}
	db["member"] = members.Relation()

	// Departments with their total head count, keeping teamless
	// departments (outer joins down the hierarchy), only where the
	// head count stays small — a filter over the aggregated column.
	query := `
	  select dept.name as dept, count(member.id) as heads
	  from dept
	  left outer join team on team.dept_id = dept.id
	  left outer join member on member.team_id = team.id
	  group by dept.name
	  having count(member.id) <= 30
	  order by dept`
	node, err := reorder.Parse(query, db)
	if err != nil {
		log.Fatal(err)
	}
	res, err := reorder.Optimize(node, db)
	if err != nil {
		log.Fatal(err)
	}
	rows, err := reorder.Execute(res.Best.Plan, db)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(rows)
	fmt.Printf("(%d plans considered; teamless departments report 0 heads — the outer joins preserve them)\n\n",
		res.Considered)

	// The same hierarchy walked bottom-up: members per team including
	// empty teams, via a right outer join.
	query2 := `
	  select team.name as team, count(member.id) as heads
	  from member right outer join team on member.team_id = team.id
	  group by team.name
	  having count(member.id) = 0
	  order by team`
	rows2, err := reorder.ExecuteSQL(query2, db)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("empty teams (%d):\n%s", rows2.Len(), rows2)
}
