// Hypergraph explorer: walks the paper's machinery on Q4 (Example
// 3.2 / Figure 1): the hypergraph with its preserved and conflict
// sets, the association-tree space with and without hyperedge
// break-up, and the saturated expression-tree space with the
// generalized-selection compensations.
package main

import (
	"fmt"
	"log"

	reorder "repro"
	"repro/internal/assoctree"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/hypergraph"
	"repro/internal/plan"
)

func main() {
	q4 := experiments.Q4()
	fmt.Println("Q4 = r1 LOJ (r2 LOJ[p24 and p25] ((r4 JOIN r5) JOIN r3)):")
	fmt.Println(reorder.ExplainPlan(q4))

	h, err := reorder.Hypergraph(q4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("hypergraph (Figure 1):")
	fmt.Println(h)

	for _, e := range h.Edges {
		if e.Kind != hypergraph.Undirected {
			fmt.Printf("pres(h%d) = %v\n", e.ID, h.Pres(e))
		}
	}
	fmt.Println()

	broken, strict, err := reorder.AssociationTreeCounts(q4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("association trees: %d with break-up (Definition 3.2) vs %d without ([BHAR95a])\n\n",
		broken, strict)

	be, _ := assoctree.NewEnumerator(h, hypergraph.Broken)
	fmt.Println("Definition 3.2 trees:")
	for _, tr := range be.Trees(0) {
		fmt.Printf("  %s\n", tr)
	}
	fmt.Println()

	// The complex predicate of h2 can be broken up; Theorem 1 derives
	// the compensation specs.
	var complexEdge *hypergraph.Hyperedge
	for _, e := range h.Edges {
		if e.Complex() {
			complexEdge = e
		}
	}
	specs := core.CompensationSpecs(h, complexEdge)
	fmt.Printf("breaking %s defers a conjunct behind σ* preserving %v\n\n", complexEdge, specs)

	plans := reorder.Enumerate(q4, 3000)
	orders := reorder.JoinOrders(plans)
	fmt.Printf("saturated expression trees: %d plans over %d join orders:\n", len(plans), len(orders))
	for _, o := range orders {
		fmt.Printf("  %s\n", o)
	}

	// One of the new orders combines r2 with r4 before r5 arrives —
	// impossible without generalized selection / MGOJ. Show a plan
	// realizing it.
	for _, p := range plans {
		if reorder.JoinOrders([]plan.Node{p})[0] == "(((r2.r4).(r3.r5)).r1)" {
			fmt.Println("\na plan realizing the paper's new order (r2 meets r4 first):")
			fmt.Println(reorder.ExplainPlan(p))
			break
		}
	}
}
