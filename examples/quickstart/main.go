// Quickstart: build a tiny database, run a SQL query with outer joins
// through the optimizer, and print the plan space and result.
package main

import (
	"fmt"
	"log"

	reorder "repro"
	"repro/internal/relation"
	"repro/internal/value"
)

func main() {
	// A small employees/departments database. NULL department ids
	// make the outer-join semantics visible.
	employees := relation.NewBuilder("emp", "name", "dept", "salary").
		Row(value.NewString("ada"), value.NewInt(1), value.NewInt(120)).
		Row(value.NewString("grace"), value.NewInt(2), value.NewInt(130)).
		Row(value.NewString("alan"), value.Null, value.NewInt(95)).
		Row(value.NewString("edsger"), value.NewInt(3), value.NewInt(110)).
		Relation()
	departments := relation.NewBuilder("dept", "id", "dname").
		Row(value.NewInt(1), value.NewString("research")).
		Row(value.NewInt(2), value.NewString("systems")).
		Row(value.NewInt(9), value.NewString("empty")).
		Relation()
	db := reorder.Database{"emp": employees, "dept": departments}

	query := `select emp.name, dept.dname
	          from emp left outer join dept on emp.dept = dept.id
	          where emp.salary >= 100`

	node, err := reorder.Parse(query, db)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("plan as written:")
	fmt.Println(reorder.ExplainPlan(node))

	res, err := reorder.Optimize(node, db)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(reorder.Explain(res))

	rows, err := reorder.Execute(res.Best.Plan, db)
	if err != nil {
		log.Fatal(err)
	}
	rows.SortForDisplay()
	fmt.Println("result:")
	fmt.Println(rows)

	// The equivalence class is small for this two-relation query but
	// demonstrates the enumeration API.
	plans := reorder.Enumerate(node, 0)
	fmt.Printf("equivalence class: %d plans, join orders %v\n",
		len(plans), reorder.JoinOrders(plans))
}
