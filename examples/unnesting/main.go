// Unnesting: the Section 1.1 join-aggregate query with nested
// correlated COUNT subqueries,
//
//	Select r1.a From r1
//	Where r1.b >= (Select count(*) From r2
//	               Where r2.c = r1.c and r2.d >= (Select count(*) From r3
//	                                              Where r2.e = r3.e and r1.f = r3.f))
//
// evaluated two ways: Tuple Iteration Semantics (the nested-loops
// strategy of early commercial systems) and the unnested outer-join +
// group-by plan whose HAVING step is a generalized selection — the
// paper's primitive closing the classic count bug.
package main

import (
	"fmt"
	"log"
	"time"

	reorder "repro"
	"repro/internal/executor"
	"repro/internal/experiments"
)

func main() {
	q := experiments.E8Query()
	fmt.Println("sweeping |r1| (inner relations scale with it):")
	fmt.Printf("%-8s %14s %14s %9s\n", "|r1|", "TIS", "unnested", "speedup")
	for _, n := range []int{100, 200, 400, 800} {
		db := experiments.E8DB(n, experiments.DefaultE8Config())

		start := time.Now()
		tis, err := q.TIS(db)
		if err != nil {
			log.Fatal(err)
		}
		tisTime := time.Since(start)

		unnested, err := q.Unnest(db)
		if err != nil {
			log.Fatal(err)
		}
		start = time.Now()
		got, err := executor.Run(unnested, db)
		if err != nil {
			log.Fatal(err)
		}
		unTime := time.Since(start)

		if !got.EqualAsMultisets(tis) {
			log.Fatalf("plans disagree at n=%d", n)
		}
		fmt.Printf("%-8d %14s %14s %8.1fx\n", n, tisTime, unTime,
			float64(tisTime)/float64(unTime))
	}

	// Show the unnested plan once; note the generalized selection
	// preserving r1 between the two aggregation levels.
	db := experiments.E8DB(100, experiments.DefaultE8Config())
	unnested, err := q.Unnest(db)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nunnested plan:")
	fmt.Println(reorder.ExplainPlan(unnested))

	// The same query can come straight from SQL text.
	sqlText := `
	  select r1.a from r1
	  where r1.b >= (select count(*) from r2
	                 where r2.c = r1.c and r2.d >= (select count(*) from r3
	                                                where r2.e = r3.e and r1.f = r3.f))`
	node, err := reorder.Parse(sqlText, db)
	if err != nil {
		log.Fatal(err)
	}
	got, err := reorder.Execute(node, db)
	if err != nil {
		log.Fatal(err)
	}
	want, _ := q.TIS(db)
	fmt.Printf("SQL front end lowers to the same unnested plan: %d rows (TIS agrees: %v)\n",
		got.Len(), got.EqualAsMultisets(want))
}
