// Supplier audit: the paper's motivating Example 1.1. A business
// analyst wants suppliers to discontinue: BANKRUPT suppliers joined
// against their 1994 aggregates, outer-joined to the 1995 per-part
// transaction counts, with the outer join predicate referencing the
// aggregated column (QTY < 2 * 95AGGQTY).
//
// The query as written must aggregate the big 95DETAIL relation
// before the join. The paper's reordering joins the few bankrupt
// suppliers first and aggregates last; this example shows the
// optimizer discovering that plan and the resulting speedup.
package main

import (
	"fmt"
	"log"
	"time"

	reorder "repro"
	"repro/internal/datagen"
	"repro/internal/executor"
)

func main() {
	cfg := datagen.DefaultSupplierConfig
	cfg.DetailRows = 30000
	cfg.BankruptFrac = 0.02
	db := datagen.Supplier(cfg)
	fmt.Printf("workload: %d suppliers (%.0f%% bankrupt), %d agg94 rows, %d detail95 rows\n\n",
		cfg.Suppliers, cfg.BankruptFrac*100, cfg.AggRows, cfg.DetailRows)

	asWritten := datagen.SupplierQuery()
	fmt.Println("query as written (aggregate detail95 first):")
	fmt.Println(reorder.ExplainPlan(asWritten))

	res, err := reorder.Optimize(asWritten, db)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(reorder.Explain(res))

	base, err := reorder.OptimizeBaseline(asWritten, db)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("baseline optimizer (no aggregation push-up): best cost %.0f over %d plans\n\n",
		base.Best.Cost, base.Considered)

	run := func(name string, p reorder.Node) {
		start := time.Now()
		out, err := executor.Run(p, db)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-22s %8d rows in %s\n", name, out.Len(), time.Since(start))
	}
	run("as written:", asWritten)
	run("optimizer's choice:", res.Best.Plan)

	same, err := reorder.Equivalent(asWritten, res.Best.Plan, db)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nplans equivalent: %v\n", same)
}
