// CSV workbench: load a directory of CSV files as a database, run ad
// hoc SQL with outer joins and aggregation through the optimizer, and
// emit the chosen plan as Graphviz DOT. This example writes its own
// sample data to a temporary directory so it is fully self-contained:
//
//	go run ./examples/csv_workbench
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	reorder "repro"
	"repro/internal/plan"
)

func main() {
	dir, err := os.MkdirTemp("", "reorder-csv")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	files := map[string]string{
		"orders.csv": "id,customer,amount\n" +
			"1,ada,120\n2,grace,80\n3,ada,200\n4,alan,50\n5,grace,300\n6,,75\n",
		"customers.csv": "name,region\n" +
			"ada,emea\ngrace,amer\nbarbara,apac\n",
	}
	for name, data := range files {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(data), 0o644); err != nil {
			log.Fatal(err)
		}
	}

	db, err := reorder.LoadCSVDir(dir)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loaded %d tables from %s\n\n", len(db), dir)

	queries := []string{
		// Outer join keeps customer-less orders; the filter on the
		// preserved side pushes down.
		`select orders.id, orders.amount, customers.region
		 from orders left outer join customers on orders.customer = customers.name
		 where orders.amount >= 75
		 order by amount desc limit 4`,
		// Aggregation with HAVING.
		`select customer, count(*) as orders, sum(amount) as total
		 from orders group by customer having sum(amount) > 100`,
		// Boolean predicates.
		`select id from orders
		 where customer in ('ada', 'grace') and not (amount between 100 and 250)`,
	}
	for i, q := range queries {
		fmt.Printf("--- query %d\n%s\n", i+1, q)
		res, err := reorder.OptimizeSQL(q, db)
		if err != nil {
			log.Fatal(err)
		}
		rows, err := reorder.Execute(res.Best.Plan, db)
		if err != nil {
			log.Fatal(err)
		}
		if i != 0 { // query 1 carries its own ORDER BY
			rows.SortForDisplay()
		}
		fmt.Printf("\n%s", rows)
		fmt.Printf("(%d plans considered, best cost %.0f)\n\n", res.Considered, res.Best.Cost)
	}

	// The chosen plan of the first query, as Graphviz DOT.
	res, err := reorder.OptimizeSQL(queries[0], db)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("plan of query 1 as DOT (pipe into `dot -Tsvg`):")
	fmt.Println(plan.DOT(res.Best.Plan))
}
