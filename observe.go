// Observer is the process-wide observability hub: an aggregate
// metrics registry every observed run merges into, and the flight
// recorder holding the last N query records. ExplainAnalyze keeps its
// per-run isolation contract (each run meters against a private
// registry), and the Observer is where those private runs fold into
// one exportable view — /metrics scrapes the aggregate registry,
// /debug/queries dumps the flight ring.
package reorder

import (
	"context"
	"net/http"
	"strings"
	"time"

	"repro/internal/guard"
	"repro/internal/obs"
	"repro/internal/obs/flight"
	"repro/internal/optimizer"
	"repro/internal/plan"
)

// Observer aggregates observed runs. The zero value is unusable; use
// NewObserver. A nil *Observer is a valid "not observing" value
// everywhere it is accepted.
type Observer struct {
	// Registry is the process-wide aggregate: each observed run's
	// private registry is merged in after the run (counters add,
	// gauges take the latest value, histograms merge bucket-wise).
	Registry *obs.Registry
	// Flight holds the last N query records.
	Flight *flight.Recorder
}

// NewObserver builds an observer whose flight recorder holds the last
// flightCap queries (flight.DefaultCapacity for flightCap <= 0).
func NewObserver(flightCap int) *Observer {
	return &Observer{Registry: obs.NewRegistry(), Flight: flight.New(flightCap)}
}

// Handler serves the observer over HTTP: /metrics in Prometheus text
// exposition format and /debug/queries as the flight-recorder JSON
// dump.
func (ob *Observer) Handler() http.Handler {
	if ob == nil {
		return obs.Handler(nil, nil)
	}
	return obs.Handler(ob.Registry, ob.Flight)
}

// ExplainAnalyzeObserved is ExplainAnalyzeBudget with the run folded
// into an observer: the run still meters against a private registry
// (the report's Metrics snapshot is this run only), and afterwards the
// registry merges into ob.Registry and one flight record — phase
// timings, memo/guard counters, degradation and budget-trip flags,
// and per-operator estimated-vs-actual rows with q-errors — is
// deposited in ob.Flight. Failed runs are recorded too, with the
// terminal error. ob may be nil (plain ExplainAnalyzeBudget).
func ExplainAnalyzeObserved(ctx context.Context, q Node, db Database, workers int, l Limits, ob *Observer) (*AnalyzeReport, error) {
	return ExplainAnalyzeObservedEngine(ctx, q, db, workers, l, ob, false)
}

// ExplainAnalyzeObservedEngine is ExplainAnalyzeObserved with an
// engine selector: vectorized=true executes the chosen plan on the
// columnar engine (cmd/reorder's -vec flag).
func ExplainAnalyzeObservedEngine(ctx context.Context, q Node, db Database, workers int, l Limits, ob *Observer, vectorized bool) (*AnalyzeReport, error) {
	reg := obs.NewRegistry()
	return explainAnalyze(q, db, workers, guard.New(ctx, l, reg), reg, ob, vectorized)
}

// record deposits one run into the observer: merge the run's private
// registry into the aggregate, then add the flight record. Nil-safe.
func (ob *Observer) record(q, chosen plan.Node, res *optimizer.Result, reg *obs.Registry, b *guard.Budget, start time.Time, execNs int64, runErr error, rowsOut int, ops []flight.OpStat) {
	if ob == nil {
		return
	}
	rec := flight.Record{
		Start:       start,
		Query:       plan.Key(q),
		Hash:        plan.Fingerprint(q),
		DurNs:       time.Since(start).Nanoseconds(),
		RowsOut:     rowsOut,
		BudgetTrips: b.Trips(),
		Counters:    flightCounters(reg),
		Ops:         ops,
	}
	if res != nil {
		rec.PlanKey = plan.Key(res.Best.Plan)
		rec.Degraded = res.Degraded
		for _, p := range res.Phases {
			rec.Phases = append(rec.Phases, flight.Phase{Name: p.Name, Ns: p.Elapsed.Nanoseconds()})
		}
	} else if chosen != nil {
		rec.PlanKey = plan.Key(chosen)
	}
	if execNs > 0 {
		rec.Phases = append(rec.Phases, flight.Phase{Name: "execute", Ns: execNs})
	}
	if runErr != nil {
		rec.Error = runErr.Error()
	}
	if ob.Registry != nil {
		ob.Registry.Merge(reg)
	}
	ob.Flight.Add(rec)
}

// flightCounters extracts the flight record's counter subset from a
// run registry: the optimizer, memo and guard counters that explain
// how the plan came to be, not the per-operator executor figures the
// Ops rows already carry.
func flightCounters(reg *obs.Registry) map[string]int64 {
	if reg == nil {
		return nil
	}
	snap := reg.Snapshot()
	var out map[string]int64
	for name, v := range snap.Counters {
		if strings.HasPrefix(name, "memo.") || strings.HasPrefix(name, "guard.") ||
			strings.HasPrefix(name, "optimizer.") || strings.HasPrefix(name, "feedback.") {
			if out == nil {
				out = make(map[string]int64)
			}
			out[name] = v
		}
	}
	return out
}
