// Benchmarks regenerating the measurable side of every experiment in
// DESIGN.md's index (E1–E12). Each experiment that compares two
// strategies gets one benchmark per strategy, so `go test -bench=.`
// prints the paper's "who wins, by how much" shape directly.
package reorder

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/executor"
	"repro/internal/experiments"
	"repro/internal/obs"
	"repro/internal/optimizer"
	"repro/internal/plan"
	"repro/internal/stats"
)

// --- E1: generalized selection over Example 2.1-shaped data ---------

// BenchmarkE1GSCompensation measures a compensated plan (GS over a
// reordered outer-join pair, the Example 2.1 shape) at scale.
func BenchmarkE1GSCompensation(b *testing.B) {
	db := Database{}
	for i, name := range []string{"r1", "r2", "r3"} {
		db[name] = datagen.Uniform(newRand(int64(i+1)), name,
			datagen.UniformConfig{Rows: 800, Domain: 200})
	}
	q := experiments.Query2()
	split, err := core.DeferConjuncts(q, q.(*plan.Join), []int{0})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := executor.Run(split, db); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E2/E3: hypergraph construction and association-tree enumeration

func BenchmarkE2Hypergraph(b *testing.B) {
	q := experiments.Q4()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Hypergraph(q); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE3AssociationTrees(b *testing.B) {
	q := experiments.Q4()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := AssociationTreeCounts(q); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E4/E5/E6: identity application and Theorem 1 splitting ---------

func BenchmarkE4IdentitySplit(b *testing.B) {
	q := experiments.Query2()
	top := q.(*plan.Join)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.DeferConjuncts(q, top, []int{0}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E7: Example 1.1, aggregate-first vs join-first -----------------

func e7DB() Database {
	cfg := datagen.DefaultSupplierConfig
	cfg.DetailRows = 10000
	return datagen.Supplier(cfg)
}

func BenchmarkE7AsWritten(b *testing.B) {
	db := e7DB()
	q, _, err := experiments.E7Plans(db)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := executor.Run(q, db); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE7Reordered(b *testing.B) {
	db := e7DB()
	_, q, err := experiments.E7Plans(db)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := executor.Run(q, db); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E8: TIS vs unnested join-aggregate -----------------------------

func BenchmarkE8TIS(b *testing.B) {
	for _, n := range []int{50, 100, 200} {
		b.Run(fmt.Sprintf("r1=%d", n), func(b *testing.B) {
			db := experiments.E8DB(n, experiments.DefaultE8Config())
			q := experiments.E8Query()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := q.TIS(db); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkE8Unnested(b *testing.B) {
	for _, n := range []int{50, 100, 200} {
		b.Run(fmt.Sprintf("r1=%d", n), func(b *testing.B) {
			db := experiments.E8DB(n, experiments.DefaultE8Config())
			q := experiments.E8Query()
			unnested, err := q.Unnest(db)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := executor.Run(unnested, db); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- E9: Query 2 as written vs the GS reordering ---------------------

func e9DB() Database {
	db := Database{}
	db["r1"] = datagen.Uniform(newRand(9), "r1", datagen.UniformConfig{Rows: 5000, Domain: 100})
	db["r2"] = datagen.Uniform(newRand(10), "r2", datagen.UniformConfig{Rows: 200, Domain: 100})
	db["r3"] = datagen.Uniform(newRand(11), "r3", datagen.UniformConfig{Rows: 200, Domain: 100})
	return db
}

func BenchmarkE9AsWritten(b *testing.B) {
	db := e9DB()
	q := experiments.Query2()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := executor.Run(q, db); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE9Reordered(b *testing.B) {
	db := e9DB()
	q := experiments.Query2()
	res, err := Optimize(q, db)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := executor.Run(res.Best.Plan, db); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E10: optimizer enumeration scaling -----------------------------

func BenchmarkE10Saturation(b *testing.B) {
	for n := 3; n <= 5; n++ {
		q := chainQuery(n)
		b.Run(fmt.Sprintf("rels=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				core.Saturate(q, core.SaturateOptions{MaxPlans: 100000})
			}
		})
	}
}

func BenchmarkE10Optimize(b *testing.B) {
	db := datagen.Chain(5, datagen.UniformConfig{Rows: 100, Domain: 20}, 10)
	for n := 3; n <= 5; n++ {
		q := chainQuery(n)
		est := stats.NewEstimator(stats.FromDatabase(db))
		b.Run(fmt.Sprintf("rels=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := optimizer.New(est).Optimize(q, db); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- E11: GS as the primitive binary operator -----------------------

func BenchmarkE11GenSelect(b *testing.B) {
	db := e9DB()
	q := experiments.Query2()
	split, err := core.DeferConjuncts(q, q.(*plan.Join), []int{0})
	if err != nil {
		b.Fatal(err)
	}
	gs := split.(*plan.GenSel)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := executor.Run(gs, db); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E12: Example 3.1 push-up at scale -------------------------------

func BenchmarkE12PushUpOriginal(b *testing.B) {
	db := e12DB()
	q, _, err := experiments.E12Plans(db)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := executor.Run(q, db); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE12PushUpRewritten(b *testing.B) {
	db := e12DB()
	_, q, err := experiments.E12Plans(db)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := executor.Run(q, db); err != nil {
			b.Fatal(err)
		}
	}
}

func e12DB() Database {
	db := Database{}
	db["r1"] = datagen.Uniform(newRand(21), "r1", datagen.UniformConfig{Rows: 800, Domain: 50})
	db["r2"] = datagen.Uniform(newRand(22), "r2", datagen.UniformConfig{Rows: 800, Domain: 50})
	db["r3"] = datagen.Uniform(newRand(23), "r3", datagen.UniformConfig{Rows: 100, Domain: 50})
	return db
}

// --- executor-strategy benchmarks ------------------------------------

// BenchmarkExecutorStrategies compares the three execution modes on
// the same three-way outer-join query: the materializing executor,
// the Volcano iterator tree, and the goroutine-parallel probe.
func BenchmarkExecutorStrategies(b *testing.B) {
	db := Database{}
	for i, name := range []string{"r1", "r2", "r3"} {
		db[name] = datagen.Uniform(newRand(int64(100+i)), name,
			datagen.UniformConfig{Rows: 20000, Domain: 2000})
	}
	q := experiments.Query2()
	b.Run("materializing", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := executor.Run(q, db); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("streaming", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := executor.RunStreaming(q, db); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("parallel", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := executor.RunParallel(q, db, 0); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- observability benchmarks ----------------------------------------

// BenchmarkInstrumentationOverhead prices the per-operator probes: the
// same supplier plan through the plain and the instrumented executor.
func BenchmarkInstrumentationOverhead(b *testing.B) {
	db := datagen.Supplier(datagen.DefaultSupplierConfig)
	q := datagen.SupplierQuery()
	b.Run("plain", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := executor.Run(q, db); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("instrumented", func(b *testing.B) {
		reg := obs.NewRegistry()
		for i := 0; i < b.N; i++ {
			if _, _, err := executor.RunInstrumented(q, db, reg); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkExplainAnalyzeReport measures the full EXPLAIN ANALYZE
// pipeline and surfaces its machine-readable dump as benchmark
// metrics: the decoded JSON report drives ReportMetric, so `go test
// -bench` prints actual cardinalities and optimizer counters next to
// the timings.
func BenchmarkExplainAnalyzeReport(b *testing.B) {
	db := datagen.Supplier(datagen.DefaultSupplierConfig)
	q := datagen.SupplierQuery()
	var data []byte
	for i := 0; i < b.N; i++ {
		rep, err := ExplainAnalyze(q, db)
		if err != nil {
			b.Fatal(err)
		}
		data, err = rep.JSON()
		if err != nil {
			b.Fatal(err)
		}
	}
	rep, err := DecodeAnalyzeReport(data)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(rep.RowsOut), "rows_out")
	b.ReportMetric(float64(rep.Considered), "plans")
	b.ReportMetric(float64(rep.Metrics.Counters["executor.residual_evals"]), "residual_evals")
	for _, p := range rep.Phases {
		if p.Name == "saturate" {
			b.ReportMetric(float64(p.Ns), "saturate_ns")
		}
	}
}

// BenchmarkObsPrimitives prices the registry's hot paths, the numbers
// that justify leaving the counters on in the default executor.
func BenchmarkObsPrimitives(b *testing.B) {
	b.Run("counter", func(b *testing.B) {
		reg := obs.NewRegistry()
		c := reg.Counter("bench.counter")
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				c.Inc()
			}
		})
	})
	b.Run("histogram", func(b *testing.B) {
		reg := obs.NewRegistry()
		h := reg.Histogram("bench.histogram")
		b.RunParallel(func(pb *testing.PB) {
			i := int64(0)
			for pb.Next() {
				i++
				h.Observe(i)
			}
		})
	})
	b.Run("registry-lookup", func(b *testing.B) {
		reg := obs.NewRegistry()
		reg.Counter("bench.lookup")
		for i := 0; i < b.N; i++ {
			reg.Counter("bench.lookup").Inc()
		}
	})
}
