package reorder

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/plancache"
)

func TestHandlerQuery(t *testing.T) {
	svc := newTestService(t, ServiceConfig{})
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	// Happy path: rows come back with serving metadata.
	resp, err := http.Post(srv.URL+"/query", "application/json",
		strings.NewReader(`{"sql": "select b from t where a = 1"}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var r Response
	if err := json.NewDecoder(resp.Body).Decode(&r); err != nil {
		t.Fatal(err)
	}
	if r.CacheStatus != "miss" || len(r.Rows) != 6 || r.Params != 1 {
		t.Fatalf("response = %+v", r)
	}

	// Second identical shape over HTTP is a cache hit.
	resp2, err := http.Post(srv.URL+"/query", "application/json",
		strings.NewReader(`{"sql": "select b from t where a = 3"}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var r2 Response
	if err := json.NewDecoder(resp2.Body).Decode(&r2); err != nil {
		t.Fatal(err)
	}
	if r2.CacheStatus != "hit" {
		t.Fatalf("second request: cache=%s, want hit", r2.CacheStatus)
	}
}

func TestHandlerErrorEnvelope(t *testing.T) {
	svc := newTestService(t, ServiceConfig{})
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	cases := []struct {
		name   string
		method string
		body   string
		status int
		code   string
	}{
		{"parse error", "POST", `{"sql": "selec b from t"}`, 400, "bad_query"},
		{"bad json", "POST", `{"sql": `, 400, "bad_request"},
		{"missing sql", "POST", `{}`, 400, "bad_request"},
		{"wrong method", "GET", ``, 405, "method_not_allowed"},
	}
	for _, tc := range cases {
		req, err := http.NewRequest(tc.method, srv.URL+"/query", strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		var envelope struct {
			Error struct {
				Code    string `json:"code"`
				Message string `json:"message"`
			} `json:"error"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&envelope); err != nil {
			t.Fatalf("%s: decoding envelope: %v", tc.name, err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.status || envelope.Error.Code != tc.code {
			t.Fatalf("%s: got %d/%s, want %d/%s",
				tc.name, resp.StatusCode, envelope.Error.Code, tc.status, tc.code)
		}
		if envelope.Error.Message == "" {
			t.Fatalf("%s: empty error message", tc.name)
		}
	}
}

// TestHandlerObservability: /metrics exposes the plancache and serve
// series and /debug/cache reports the live stats.
func TestHandlerObservability(t *testing.T) {
	svc := newTestService(t, ServiceConfig{})
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	for i := 0; i < 3; i++ {
		resp, err := http.Post(srv.URL+"/query", "application/json",
			strings.NewReader(`{"sql": "select b from t where a = 2"}`))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}

	mresp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	fams, err := obs.ParseExposition(mresp.Body)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"plancache_hits_total", "plancache_misses_total"} {
		fam, ok := fams[name]
		if !ok {
			t.Fatalf("/metrics lacks %s; have %d families", name, len(fams))
		}
		if len(fam.Samples) == 0 || fam.Samples[0].Value == 0 {
			t.Fatalf("%s not incremented", name)
		}
	}
	if _, ok := fams["serve_requests_total"]; !ok {
		t.Fatal("/metrics lacks serve_requests_total")
	}

	cresp, err := http.Get(srv.URL + "/debug/cache")
	if err != nil {
		t.Fatal(err)
	}
	defer cresp.Body.Close()
	var st plancache.Stats
	if err := json.NewDecoder(cresp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Entries != 1 || st.Misses != 1 || st.Hits != 2 {
		t.Fatalf("/debug/cache = %+v", st)
	}
}
