// Service is the long-running query-serving layer: admission control
// in front, the fingerprint-keyed plan cache in the middle, the
// budgeted executor at the back. The design premise follows the paper:
// optimization is the expensive step worth doing well once, so the
// service parameterizes every incoming query (literals become $n
// slots), optimizes the parameterized template exactly once per
// distinct shape, and serves every later request with the same shape
// by binding its constants into the cached winner.
package reorder

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/executor"
	"repro/internal/guard"
	"repro/internal/obs"
	"repro/internal/obs/flight"
	"repro/internal/optimizer"
	"repro/internal/plan"
	"repro/internal/plancache"
	"repro/internal/sql"
	"repro/internal/stats"
	"repro/internal/value"
)

// ErrOverloaded is the typed load-shed error: the admission queue is
// full and the request was rejected without consuming any optimizer or
// executor resources. Clients should back off; the HTTP layer maps it
// to 429.
var ErrOverloaded = errors.New("reorder: server overloaded, request shed")

// ServiceConfig configures NewService. The zero value of each field
// selects a sensible default.
type ServiceConfig struct {
	// DB is the database served. Required.
	DB Database
	// CacheBytes bounds the plan cache's estimated footprint
	// (default 64 MiB).
	CacheBytes int64
	// MaxConcurrent caps requests inside the optimize/execute section
	// (default 8).
	MaxConcurrent int
	// MaxQueue caps requests waiting for a concurrency slot; arrivals
	// beyond MaxConcurrent+MaxQueue are shed with ErrOverloaded
	// (default 4×MaxConcurrent).
	MaxQueue int
	// DefaultTimeout bounds a request that carries no deadline of its
	// own (default 5s; ≤0 keeps the default).
	DefaultTimeout time.Duration
	// DefaultLimits is the per-request budget for tenants without an
	// entry in Tenants (zero = unlimited).
	DefaultLimits Limits
	// Tenants maps tenant names to their per-request budgets.
	Tenants map[string]Limits
	// Workers is the optimizer's worker count (0 = serial).
	Workers int
	// MaxPlans caps optimizer enumeration (0 = optimizer default).
	MaxPlans int
	// FlightCap sizes the flight recorder ring (0 = default).
	FlightCap int
}

// Service serves parameterized SQL over an in-memory database with a
// shared plan cache and admission control. Safe for concurrent use.
type Service struct {
	cfg   ServiceConfig
	db    Database
	est   *stats.Estimator
	cache *plancache.Cache
	ob    *Observer

	sem      chan struct{} // concurrency slots
	inflight atomic.Int64  // waiting + running, bounded by slots+queue

	queueDepth *obs.Gauge
	shed       *obs.Counter
	requests   *obs.CounterVec
}

// NewService builds a serving facade over cfg.DB. Statistics are
// computed once up front (the catalog is exact, so this is the
// service's ANALYZE step) and shared by every optimization.
func NewService(cfg ServiceConfig) (*Service, error) {
	if len(cfg.DB) == 0 {
		return nil, fmt.Errorf("reorder: ServiceConfig.DB is required")
	}
	if cfg.CacheBytes <= 0 {
		cfg.CacheBytes = 64 << 20
	}
	if cfg.MaxConcurrent <= 0 {
		cfg.MaxConcurrent = 8
	}
	if cfg.MaxQueue <= 0 {
		cfg.MaxQueue = 4 * cfg.MaxConcurrent
	}
	if cfg.DefaultTimeout <= 0 {
		cfg.DefaultTimeout = 5 * time.Second
	}
	ob := NewObserver(cfg.FlightCap)
	s := &Service{
		cfg:        cfg,
		db:         cfg.DB,
		est:        stats.NewEstimator(stats.FromDatabase(cfg.DB)),
		cache:      plancache.New(cfg.CacheBytes, ob.Registry),
		ob:         ob,
		sem:        make(chan struct{}, cfg.MaxConcurrent),
		queueDepth: ob.Registry.Gauge("serve.queue_depth"),
		shed:       ob.Registry.Counter("serve.shed"),
		requests:   ob.Registry.CounterVec("serve.requests", "outcome"),
	}
	return s, nil
}

// Observer exposes the service's metrics registry and flight recorder
// (the same instance backing its /metrics and /debug/queries routes).
func (s *Service) Observer() *Observer { return s.ob }

// CacheStats snapshots the plan cache.
func (s *Service) CacheStats() plancache.Stats { return s.cache.Stats() }

// Request is one query submission.
type Request struct {
	// SQL is the query text with inline literals.
	SQL string `json:"sql"`
	// Tenant selects the per-tenant budget ("" = DefaultLimits).
	Tenant string `json:"tenant,omitempty"`
	// TimeoutMillis bounds the request end to end; 0 uses the
	// service default, and values above the default are clamped to it
	// (the client cannot opt out of the server's ceiling).
	TimeoutMillis int64 `json:"timeout_ms,omitempty"`
	// Cache selects cache behavior: "" serves through the plan cache,
	// "bypass" optimizes from scratch without touching the cache
	// (benchserve uses this to measure the miss path).
	Cache string `json:"cache,omitempty"`
}

// Response is one query result with serving metadata.
type Response struct {
	Columns []string `json:"columns"`
	Rows    [][]any  `json:"rows"`
	// CacheStatus is "hit", "miss", "shared" (waited on another
	// request's optimization of the same template) or "bypass".
	CacheStatus string `json:"cache"`
	// PlanKey is the executed plan's canonical fingerprint.
	PlanKey string `json:"plan_key"`
	// Params is the number of literals normalized into slots.
	Params int `json:"params"`
	// Degraded carries the optimizer's degradation reason when the
	// cached plan came from a budget-degraded optimization.
	Degraded string `json:"degraded,omitempty"`
	// Phase timings in nanoseconds.
	QueuedNs   int64 `json:"queued_ns"`
	OptimizeNs int64 `json:"optimize_ns"`
	BindNs     int64 `json:"bind_ns"`
	ExecNs     int64 `json:"exec_ns"`
}

// ServeError is a classified request failure. Code is stable and
// machine-readable; HTTPStatus is the status the HTTP layer maps it
// to.
type ServeError struct {
	Code       string
	HTTPStatus int
	Err        error
}

// Error implements error.
func (e *ServeError) Error() string { return e.Code + ": " + e.Err.Error() }

// Unwrap exposes the underlying cause to errors.Is/As.
func (e *ServeError) Unwrap() error { return e.Err }

// classify wraps err with its serving taxonomy. parseStage marks
// failures before any plan existed (client's query text is at fault).
func classify(err error, parseStage bool) *ServeError {
	switch {
	case errors.Is(err, ErrOverloaded):
		return &ServeError{Code: "overloaded", HTTPStatus: 429, Err: err}
	case guard.IsCancelled(err):
		return &ServeError{Code: "deadline", HTTPStatus: 504, Err: err}
	case guard.IsBudget(err):
		return &ServeError{Code: "budget", HTTPStatus: 422, Err: err}
	case guard.IsInjected(err):
		return &ServeError{Code: "injected", HTTPStatus: 500, Err: err}
	case guard.IsPanic(err):
		return &ServeError{Code: "panic", HTTPStatus: 500, Err: err}
	case parseStage:
		return &ServeError{Code: "bad_query", HTTPStatus: 400, Err: err}
	default:
		return &ServeError{Code: "internal", HTTPStatus: 500, Err: err}
	}
}

// cachedPlan is the plan cache's value: the optimized parameterized
// template plus binding metadata. Immutable after insertion.
type cachedPlan struct {
	plan     plan.Node
	nparams  int
	degraded string
}

// planBytes estimates a cached plan's footprint for the cache's byte
// budget: the canonical key is a fair proxy for tree size (every node
// and predicate renders into it), multiplied by an assumed per-byte
// overhead for the node structures themselves.
func planBytes(key string, planKey string) int64 {
	return int64(len(key)+len(planKey))*8 + 1024
}

// Query serves one request end to end: admission, parameterization,
// plan-cache lookup (optimizing on miss), parameter binding, budgeted
// execution. Errors are always *ServeError.
func (s *Service) Query(ctx context.Context, req Request) (*Response, error) {
	resp, err := s.query(ctx, req)
	if err != nil {
		se := &ServeError{}
		if !errors.As(err, &se) {
			se = classify(err, false)
		}
		s.requests.With(se.Code).Inc()
		return nil, se
	}
	s.requests.With("ok").Inc()
	return resp, nil
}

func (s *Service) query(ctx context.Context, req Request) (*Response, error) {
	// Fault point first: an injected admission fault must reject
	// before any queue accounting, so it can never leak a slot. Safely
	// contains an injected panic into a typed error, keeping the
	// client-facing contract (classified error, never a crash).
	if err := guard.Safely("serve.admit", "", s.ob.Registry, func() error {
		return guard.Hit(guard.PointServeAdmit)
	}); err != nil {
		return nil, classify(err, false)
	}

	// Deadline: the client's requested timeout, clamped to the server
	// ceiling.
	timeout := s.cfg.DefaultTimeout
	if req.TimeoutMillis > 0 {
		if d := time.Duration(req.TimeoutMillis) * time.Millisecond; d < timeout {
			timeout = d
		}
	}
	ctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()

	// Admission: bound waiting+running; beyond the bound, shed
	// immediately with the typed overload error — the queue can never
	// grow without limit.
	if n := s.inflight.Add(1); n > int64(s.cfg.MaxConcurrent+s.cfg.MaxQueue) {
		s.inflight.Add(-1)
		s.shed.Inc()
		return nil, classify(ErrOverloaded, false)
	}
	defer s.inflight.Add(-1)
	s.queueDepth.Set(s.inflight.Load())

	queueStart := time.Now()
	select {
	case s.sem <- struct{}{}:
	case <-ctx.Done():
		return nil, classify(fmt.Errorf("%w: %v", guard.ErrCancelled, ctx.Err()), false)
	}
	defer func() { <-s.sem }()
	queued := time.Since(queueStart)
	s.queueDepth.Set(s.inflight.Load())

	// Per-run budget and registry (merged into the aggregate at the
	// end, preserving the observer's per-run isolation contract).
	limits := s.cfg.DefaultLimits
	if l, ok := s.cfg.Tenants[req.Tenant]; ok {
		limits = l
	}
	reg := obs.NewRegistry()
	b := guard.New(ctx, limits, reg)
	b.AddQueueWait(queued)

	start := time.Now()
	resp, planKey, templateKey, runErr := s.serve(ctx, req, b, reg)
	s.record(req, resp, planKey, templateKey, reg, b, start, runErr)
	if runErr != nil {
		return nil, runErr
	}
	resp.QueuedNs = queued.Nanoseconds()
	return resp, nil
}

// serve runs the post-admission pipeline.
func (s *Service) serve(ctx context.Context, req Request, b *guard.Budget, reg *obs.Registry) (*Response, string, string, error) {
	// Parse and parameterize: literals out, slots in.
	stmt, err := sql.Parse(req.SQL)
	if err != nil {
		return nil, "", "", classify(err, true)
	}
	tmpl, params := sql.Parameterize(stmt)
	node, err := sql.Lower(tmpl, s.db)
	if err != nil {
		return nil, "", "", classify(err, true)
	}
	key := plan.Key(node)
	hash := plan.Fingerprint(node)

	// Resolve the optimized template: cache, or direct optimization
	// when bypassed.
	var cached *cachedPlan
	status := "bypass"
	var optimizeNs int64
	if req.Cache == "bypass" {
		optStart := time.Now()
		cp, err := s.optimizeTemplate(node, b, reg)
		optimizeNs = time.Since(optStart).Nanoseconds()
		if err != nil {
			return nil, "", key, classify(err, false)
		}
		cached = cp
	} else {
		optStart := time.Now()
		entry, st, err := s.cache.Do(ctx, key, hash, func() (any, int64, error) {
			cp, err := s.optimizeTemplate(node, b, reg)
			if err != nil {
				return nil, 0, err
			}
			return cp, planBytes(key, plan.Key(cp.plan)), nil
		})
		if err != nil {
			return nil, "", key, classify(err, false)
		}
		status = st.String()
		if st != plancache.Hit {
			optimizeNs = time.Since(optStart).Nanoseconds()
		}
		var ok bool
		cached, ok = entry.Value.(*cachedPlan)
		if !ok {
			return nil, "", key, classify(fmt.Errorf("reorder: foreign cache entry for %q", key), false)
		}
	}
	if cached.nparams != len(params) {
		return nil, "", key, classify(fmt.Errorf("reorder: template %q expects %d params, got %d", key, cached.nparams, len(params)), false)
	}

	// Bind this request's constants into the shared template.
	bindStart := time.Now()
	bound, err := plan.BindParams(cached.plan, params)
	if err != nil {
		return nil, "", key, classify(err, false)
	}
	bindNs := time.Since(bindStart).Nanoseconds()
	planKey := plan.Key(bound)

	// Execute under the request budget.
	execStart := time.Now()
	rel, err := executor.RunGuarded(bound, s.db, b)
	execNs := time.Since(execStart).Nanoseconds()
	if err != nil {
		return nil, planKey, key, classify(err, false)
	}

	resp := &Response{
		CacheStatus: status,
		PlanKey:     planKey,
		Params:      len(params),
		Degraded:    cached.degraded,
		OptimizeNs:  optimizeNs,
		BindNs:      bindNs,
		ExecNs:      execNs,
	}
	attrs := rel.Schema().Attrs()
	resp.Columns = make([]string, len(attrs))
	for i, a := range attrs {
		resp.Columns[i] = a.String()
	}
	resp.Rows = make([][]any, rel.Len())
	for i, t := range rel.Tuples() {
		row := make([]any, len(t))
		for j, v := range t {
			row[j] = jsonValue(v)
		}
		resp.Rows[i] = row
	}
	return resp, planKey, key, nil
}

// optimizeTemplate runs the full optimizer on the parameterized
// template under the request's budget.
func (s *Service) optimizeTemplate(node plan.Node, b *guard.Budget, reg *obs.Registry) (*cachedPlan, error) {
	o := optimizer.New(s.est)
	o.Opts.Workers = s.cfg.Workers
	if s.cfg.MaxPlans > 0 {
		o.Opts.MaxPlans = s.cfg.MaxPlans
	}
	o.Opts.Budget = b
	o.Opts.Obs = reg
	res, err := o.Optimize(node, s.db)
	if err != nil {
		return nil, err
	}
	return &cachedPlan{plan: res.Best.Plan, nparams: plan.ParamCount(node), degraded: res.Degraded}, nil
}

// record deposits the request into the flight recorder and folds the
// run's private registry into the aggregate.
func (s *Service) record(req Request, resp *Response, planKey, templateKey string, reg *obs.Registry, b *guard.Budget, start time.Time, runErr error) {
	rec := flight.Record{
		Start:       start,
		Query:       req.SQL,
		DurNs:       time.Since(start).Nanoseconds(),
		PlanKey:     planKey,
		BudgetTrips: b.Trips(),
		Counters:    flightCounters(reg),
	}
	if templateKey != "" {
		rec.Hash = fnv64(templateKey)
	}
	if q := b.QueueWait(); q > 0 {
		rec.Phases = append(rec.Phases, flight.Phase{Name: "queued", Ns: q.Nanoseconds()})
	}
	if resp != nil {
		rec.RowsOut = len(resp.Rows)
		rec.Degraded = resp.Degraded
		if resp.OptimizeNs > 0 {
			rec.Phases = append(rec.Phases, flight.Phase{Name: "optimize", Ns: resp.OptimizeNs})
		}
		rec.Phases = append(rec.Phases,
			flight.Phase{Name: "bind", Ns: resp.BindNs},
			flight.Phase{Name: "execute", Ns: resp.ExecNs})
	}
	if runErr != nil {
		rec.Error = runErr.Error()
	}
	s.ob.Registry.Merge(reg)
	s.ob.Flight.Add(rec)
}

// fnv64 is FNV-1a over the template key — the flight record's query
// hash, grouping records of the same template.
func fnv64(s string) uint64 {
	const offset, prime = 14695981039346656037, 1099511628211
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	return h
}

// jsonValue converts a value to its natural JSON representation.
func jsonValue(v value.Value) any {
	switch v.Kind() {
	case value.KindInt:
		return v.Int()
	case value.KindFloat:
		return v.Float()
	case value.KindString:
		return v.Str()
	case value.KindBool:
		return v.Bool()
	default:
		return nil
	}
}
