// Service is the long-running query-serving layer: admission control
// in front, the fingerprint-keyed plan cache in the middle, the
// budgeted executor at the back. The design premise follows the paper:
// optimization is the expensive step worth doing well once, so the
// service parameterizes every incoming query (literals become $n
// slots), optimizes the parameterized template exactly once per
// distinct shape, and serves every later request with the same shape
// by binding its constants into the cached winner.
package reorder

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/executor"
	"repro/internal/guard"
	"repro/internal/obs"
	"repro/internal/obs/flight"
	"repro/internal/optimizer"
	"repro/internal/plan"
	"repro/internal/plancache"
	"repro/internal/relation"
	"repro/internal/sql"
	"repro/internal/stats"
	"repro/internal/stats/feedback"
	"repro/internal/value"
)

// ErrOverloaded is the typed load-shed error: the admission queue is
// full and the request was rejected without consuming any optimizer or
// executor resources. Clients should back off; the HTTP layer maps it
// to 429.
var ErrOverloaded = errors.New("reorder: server overloaded, request shed")

// ServiceConfig configures NewService. The zero value of each field
// selects a sensible default.
type ServiceConfig struct {
	// DB is the database served. Required.
	DB Database
	// CacheBytes bounds the plan cache's estimated footprint
	// (default 64 MiB).
	CacheBytes int64
	// MaxConcurrent caps requests inside the optimize/execute section
	// (default 8).
	MaxConcurrent int
	// MaxQueue caps requests waiting for a concurrency slot; arrivals
	// beyond MaxConcurrent+MaxQueue are shed with ErrOverloaded
	// (default 4×MaxConcurrent).
	MaxQueue int
	// DefaultTimeout bounds a request that carries no deadline of its
	// own (default 5s; ≤0 keeps the default).
	DefaultTimeout time.Duration
	// DefaultLimits is the per-request budget for tenants without an
	// entry in Tenants (zero = unlimited).
	DefaultLimits Limits
	// Tenants maps tenant names to their per-request budgets.
	Tenants map[string]Limits
	// Workers is the optimizer's worker count (0 = serial).
	Workers int
	// MaxPlans caps optimizer enumeration (0 = optimizer default).
	MaxPlans int
	// FlightCap sizes the flight recorder ring (0 = default).
	FlightCap int
	// Feedback enables the cardinality-feedback loop: every execution
	// runs instrumented, per-subtree actual row counts are folded into
	// a feedback store keyed by template-subtree fingerprint, and a
	// template whose max subtree q-error stays past ReplanQError for
	// ReplanAfter consecutive runs is re-optimized in place with the
	// corrected cardinalities. Off by default: the serving path is then
	// bit-identical to a service without the feature.
	Feedback bool
	// ReplanQError is the max-subtree q-error past which a run counts
	// as drifted (default 10).
	ReplanQError float64
	// ReplanAfter is the number of consecutive drifted runs that
	// triggers a re-plan (default 3).
	ReplanAfter int
	// SwapFactor is the executor's mid-query build/probe swap
	// threshold in feedback mode: a hash join whose build side
	// materializes more than SwapFactor× the probe side's rows builds
	// on the smaller side instead (default 4; negative disables).
	SwapFactor float64
	// SpillDir is the adaptive spill-escalation directory in feedback
	// mode (empty = os.TempDir()).
	SpillDir string
}

// Service serves parameterized SQL over an in-memory database with a
// shared plan cache and admission control. Safe for concurrent use.
type Service struct {
	cfg   ServiceConfig
	db    Database
	est   *stats.Estimator
	cache *plancache.Cache
	ob    *Observer

	sem      chan struct{} // concurrency slots
	inflight atomic.Int64  // waiting + running, bounded by slots+queue

	queueDepth *obs.Gauge
	shed       *obs.Counter
	requests   *obs.CounterVec

	// Feedback mode (nil fb = off, the static serving path).
	fb    *feedback.Store
	adapt *executor.Adapt
	tpl   sync.Map // template key -> *tplStats
}

// tplStats is one template's drift bookkeeping: the consecutive-drift
// streak, the last observed max subtree q-error (stored ×1000 to stay
// atomic), total corrections recorded, and the replan generation.
type tplStats struct {
	drift       atomic.Int64
	lastQMilli  atomic.Int64
	corrections atomic.Int64
	gen         atomic.Int64
}

// statsFor returns (creating on first use) key's drift bookkeeping.
func (s *Service) statsFor(key string) *tplStats {
	if v, ok := s.tpl.Load(key); ok {
		return v.(*tplStats)
	}
	v, _ := s.tpl.LoadOrStore(key, &tplStats{})
	return v.(*tplStats)
}

// NewService builds a serving facade over cfg.DB. Statistics are
// computed once up front (the catalog is exact, so this is the
// service's ANALYZE step) and shared by every optimization.
func NewService(cfg ServiceConfig) (*Service, error) {
	if len(cfg.DB) == 0 {
		return nil, fmt.Errorf("reorder: ServiceConfig.DB is required")
	}
	if cfg.CacheBytes <= 0 {
		cfg.CacheBytes = 64 << 20
	}
	if cfg.MaxConcurrent <= 0 {
		cfg.MaxConcurrent = 8
	}
	if cfg.MaxQueue <= 0 {
		cfg.MaxQueue = 4 * cfg.MaxConcurrent
	}
	if cfg.DefaultTimeout <= 0 {
		cfg.DefaultTimeout = 5 * time.Second
	}
	ob := NewObserver(cfg.FlightCap)
	s := &Service{
		cfg:        cfg,
		db:         cfg.DB,
		est:        stats.NewEstimator(stats.FromDatabase(cfg.DB)),
		cache:      plancache.New(cfg.CacheBytes, ob.Registry),
		ob:         ob,
		sem:        make(chan struct{}, cfg.MaxConcurrent),
		queueDepth: ob.Registry.Gauge("serve.queue_depth"),
		shed:       ob.Registry.Counter("serve.shed"),
		requests:   ob.Registry.CounterVec("serve.requests", "outcome"),
	}
	if cfg.Feedback {
		if s.cfg.ReplanQError <= 0 {
			s.cfg.ReplanQError = 10
		}
		if s.cfg.ReplanAfter <= 0 {
			s.cfg.ReplanAfter = 3
		}
		swap := s.cfg.SwapFactor
		switch {
		case swap == 0:
			swap = 4
		case swap < 0:
			swap = 0 // explicit disable
		}
		s.fb = feedback.New(feedback.Options{Obs: ob.Registry})
		s.adapt = &executor.Adapt{SwapFactor: swap, Spill: true, SpillDir: s.cfg.SpillDir}
	}
	return s, nil
}

// Observer exposes the service's metrics registry and flight recorder
// (the same instance backing its /metrics and /debug/queries routes).
func (s *Service) Observer() *Observer { return s.ob }

// CacheStats snapshots the plan cache.
func (s *Service) CacheStats() plancache.Stats { return s.cache.Stats() }

// CacheDebug is the /debug/cache payload: aggregate cache counters
// plus one row per cached template with its feedback state — last
// observed max q-error, corrections recorded, replan generation.
type CacheDebug struct {
	plancache.Stats
	Plans []CachePlanDebug `json:"plans"`
}

// CachePlanDebug describes one cached template.
type CachePlanDebug struct {
	Key         string  `json:"key"`
	PlanKey     string  `json:"plan_key"`
	Bytes       int64   `json:"bytes"`
	Degraded    string  `json:"degraded,omitempty"`
	LastQError  float64 `json:"last_qerror,omitempty"`
	Corrections int64   `json:"corrections,omitempty"`
	ReplanGen   int64   `json:"replan_gen,omitempty"`
	DriftRuns   int64   `json:"drift_runs,omitempty"`
}

// CacheDebug snapshots the cache and its per-template feedback state.
func (s *Service) CacheDebug() CacheDebug {
	d := CacheDebug{Stats: s.cache.Stats()}
	for _, e := range s.cache.Entries() {
		row := CachePlanDebug{Key: e.Key, Bytes: e.Bytes}
		if cp, ok := e.Value.(*cachedPlan); ok {
			row.PlanKey = plan.Key(cp.plan)
			row.Degraded = cp.degraded
		}
		if v, ok := s.tpl.Load(e.Key); ok {
			ts := v.(*tplStats)
			row.LastQError = float64(ts.lastQMilli.Load()) / 1000
			row.Corrections = ts.corrections.Load()
			row.ReplanGen = ts.gen.Load()
			row.DriftRuns = ts.drift.Load()
		}
		d.Plans = append(d.Plans, row)
	}
	return d
}

// Request is one query submission.
type Request struct {
	// SQL is the query text with inline literals.
	SQL string `json:"sql"`
	// Tenant selects the per-tenant budget ("" = DefaultLimits).
	Tenant string `json:"tenant,omitempty"`
	// TimeoutMillis bounds the request end to end; 0 uses the
	// service default, and values above the default are clamped to it
	// (the client cannot opt out of the server's ceiling).
	TimeoutMillis int64 `json:"timeout_ms,omitempty"`
	// Cache selects cache behavior: "" serves through the plan cache,
	// "bypass" optimizes from scratch without touching the cache
	// (benchserve uses this to measure the miss path).
	Cache string `json:"cache,omitempty"`
}

// Response is one query result with serving metadata.
type Response struct {
	Columns []string `json:"columns"`
	Rows    [][]any  `json:"rows"`
	// CacheStatus is "hit", "miss", "shared" (waited on another
	// request's optimization of the same template) or "bypass".
	CacheStatus string `json:"cache"`
	// PlanKey is the executed plan's canonical fingerprint.
	PlanKey string `json:"plan_key"`
	// Params is the number of literals normalized into slots.
	Params int `json:"params"`
	// Degraded carries the optimizer's degradation reason when the
	// cached plan came from a budget-degraded optimization.
	Degraded string `json:"degraded,omitempty"`
	// Phase timings in nanoseconds.
	QueuedNs   int64 `json:"queued_ns"`
	OptimizeNs int64 `json:"optimize_ns"`
	BindNs     int64 `json:"bind_ns"`
	ExecNs     int64 `json:"exec_ns"`
	// Feedback metadata (feedback mode only). MaxQError is this
	// execution's worst subtree q-error; FeedbackCorrections is how
	// many estimates the served plan's optimization took from the
	// feedback store; ReplanGen counts how many times this template
	// has been re-planned; Replanned marks the request whose drift
	// observation triggered a re-plan.
	MaxQError           float64 `json:"max_qerror,omitempty"`
	FeedbackCorrections int     `json:"feedback_corrections,omitempty"`
	ReplanGen           int64   `json:"replan_gen,omitempty"`
	Replanned           bool    `json:"replanned,omitempty"`
}

// ServeError is a classified request failure. Code is stable and
// machine-readable; HTTPStatus is the status the HTTP layer maps it
// to.
type ServeError struct {
	Code       string
	HTTPStatus int
	Err        error
}

// Error implements error.
func (e *ServeError) Error() string { return e.Code + ": " + e.Err.Error() }

// Unwrap exposes the underlying cause to errors.Is/As.
func (e *ServeError) Unwrap() error { return e.Err }

// classify wraps err with its serving taxonomy. parseStage marks
// failures before any plan existed (client's query text is at fault).
func classify(err error, parseStage bool) *ServeError {
	switch {
	case errors.Is(err, ErrOverloaded):
		return &ServeError{Code: "overloaded", HTTPStatus: 429, Err: err}
	case guard.IsCancelled(err):
		return &ServeError{Code: "deadline", HTTPStatus: 504, Err: err}
	case guard.IsBudget(err):
		return &ServeError{Code: "budget", HTTPStatus: 422, Err: err}
	case guard.IsInjected(err):
		return &ServeError{Code: "injected", HTTPStatus: 500, Err: err}
	case guard.IsPanic(err):
		return &ServeError{Code: "panic", HTTPStatus: 500, Err: err}
	case parseStage:
		return &ServeError{Code: "bad_query", HTTPStatus: 400, Err: err}
	default:
		return &ServeError{Code: "internal", HTTPStatus: 500, Err: err}
	}
}

// cachedPlan is the plan cache's value: the optimized parameterized
// template plus binding metadata. Immutable after insertion.
type cachedPlan struct {
	plan     plan.Node
	nparams  int
	degraded string
	// fbCorrections is how many estimates this plan's optimization
	// took from the feedback store (0 for a cold or feedback-off
	// optimization).
	fbCorrections int
	// estRows snapshots, per composite subtree fingerprint, the row
	// estimates the optimizer believed when it chose this plan
	// (feedback mode only). Drift is actuals measured against THESE —
	// not against a freshly corrected session, which would absorb the
	// previous run's corrections and mask a stale cached plan.
	estRows map[string]float64
}

// planBytes estimates a cached plan's footprint for the cache's byte
// budget: the canonical key is a fair proxy for tree size (every node
// and predicate renders into it), multiplied by an assumed per-byte
// overhead for the node structures themselves.
func planBytes(key string, planKey string) int64 {
	return int64(len(key)+len(planKey))*8 + 1024
}

// Query serves one request end to end: admission, parameterization,
// plan-cache lookup (optimizing on miss), parameter binding, budgeted
// execution. Errors are always *ServeError.
func (s *Service) Query(ctx context.Context, req Request) (*Response, error) {
	resp, err := s.query(ctx, req)
	if err != nil {
		se := &ServeError{}
		if !errors.As(err, &se) {
			se = classify(err, false)
		}
		s.requests.With(se.Code).Inc()
		return nil, se
	}
	s.requests.With("ok").Inc()
	return resp, nil
}

func (s *Service) query(ctx context.Context, req Request) (*Response, error) {
	// Fault point first: an injected admission fault must reject
	// before any queue accounting, so it can never leak a slot. Safely
	// contains an injected panic into a typed error, keeping the
	// client-facing contract (classified error, never a crash).
	if err := guard.Safely("serve.admit", "", s.ob.Registry, func() error {
		return guard.Hit(guard.PointServeAdmit)
	}); err != nil {
		return nil, classify(err, false)
	}

	// Deadline: the client's requested timeout, clamped to the server
	// ceiling.
	timeout := s.cfg.DefaultTimeout
	if req.TimeoutMillis > 0 {
		if d := time.Duration(req.TimeoutMillis) * time.Millisecond; d < timeout {
			timeout = d
		}
	}
	ctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()

	// Admission: bound waiting+running; beyond the bound, shed
	// immediately with the typed overload error — the queue can never
	// grow without limit.
	if n := s.inflight.Add(1); n > int64(s.cfg.MaxConcurrent+s.cfg.MaxQueue) {
		s.inflight.Add(-1)
		s.shed.Inc()
		return nil, classify(ErrOverloaded, false)
	}
	defer s.inflight.Add(-1)
	s.queueDepth.Set(s.inflight.Load())

	queueStart := time.Now()
	select {
	case s.sem <- struct{}{}:
	case <-ctx.Done():
		return nil, classify(fmt.Errorf("%w: %v", guard.ErrCancelled, ctx.Err()), false)
	}
	defer func() { <-s.sem }()
	queued := time.Since(queueStart)
	s.queueDepth.Set(s.inflight.Load())

	// Per-run budget and registry (merged into the aggregate at the
	// end, preserving the observer's per-run isolation contract).
	limits := s.cfg.DefaultLimits
	if l, ok := s.cfg.Tenants[req.Tenant]; ok {
		limits = l
	}
	reg := obs.NewRegistry()
	b := guard.New(ctx, limits, reg)
	b.AddQueueWait(queued)

	start := time.Now()
	resp, planKey, templateKey, runErr := s.serve(ctx, req, b, reg)
	s.record(req, resp, planKey, templateKey, reg, b, start, runErr)
	if runErr != nil {
		return nil, runErr
	}
	resp.QueuedNs = queued.Nanoseconds()
	return resp, nil
}

// serve runs the post-admission pipeline.
func (s *Service) serve(ctx context.Context, req Request, b *guard.Budget, reg *obs.Registry) (*Response, string, string, error) {
	// Parse and parameterize: literals out, slots in.
	stmt, err := sql.Parse(req.SQL)
	if err != nil {
		return nil, "", "", classify(err, true)
	}
	tmpl, params := sql.Parameterize(stmt)
	node, err := sql.Lower(tmpl, s.db)
	if err != nil {
		return nil, "", "", classify(err, true)
	}
	key := plan.Key(node)
	hash := plan.Fingerprint(node)

	// Resolve the optimized template: cache, or direct optimization
	// when bypassed.
	var cached *cachedPlan
	status := "bypass"
	var optimizeNs int64
	if req.Cache == "bypass" {
		optStart := time.Now()
		cp, err := s.optimizeTemplate(node, b, reg)
		optimizeNs = time.Since(optStart).Nanoseconds()
		if err != nil {
			return nil, "", key, classify(err, false)
		}
		cached = cp
	} else {
		optStart := time.Now()
		entry, st, err := s.cache.Do(ctx, key, hash, func() (any, int64, error) {
			cp, err := s.optimizeTemplate(node, b, reg)
			if err != nil {
				return nil, 0, err
			}
			return cp, planBytes(key, plan.Key(cp.plan)), nil
		})
		if err != nil {
			return nil, "", key, classify(err, false)
		}
		status = st.String()
		if st != plancache.Hit {
			optimizeNs = time.Since(optStart).Nanoseconds()
		}
		var ok bool
		cached, ok = entry.Value.(*cachedPlan)
		if !ok {
			return nil, "", key, classify(fmt.Errorf("reorder: foreign cache entry for %q", key), false)
		}
	}
	if cached.nparams != len(params) {
		return nil, "", key, classify(fmt.Errorf("reorder: template %q expects %d params, got %d", key, cached.nparams, len(params)), false)
	}

	// Bind this request's constants into the shared template.
	bindStart := time.Now()
	bound, err := plan.BindParams(cached.plan, params)
	if err != nil {
		return nil, "", key, classify(err, false)
	}
	bindNs := time.Since(bindStart).Nanoseconds()
	planKey := plan.Key(bound)

	// Execute under the request budget. Feedback mode runs
	// instrumented (per-subtree actuals feed the store) and adaptive
	// (mid-query build/probe swap and spill escalation).
	execStart := time.Now()
	var rel *relation.Relation
	var ann plan.Annotations
	if s.fb != nil {
		rel, ann, err = executor.RunInstrumentedAdaptive(bound, s.db, reg, b, s.adapt)
	} else {
		rel, err = executor.RunGuarded(bound, s.db, b)
	}
	execNs := time.Since(execStart).Nanoseconds()
	if err != nil {
		return nil, planKey, key, classify(err, false)
	}

	resp := &Response{
		CacheStatus: status,
		PlanKey:     planKey,
		Params:      len(params),
		Degraded:    cached.degraded,
		OptimizeNs:  optimizeNs,
		BindNs:      bindNs,
		ExecNs:      execNs,
	}
	if s.fb != nil {
		replan := req.Cache != "bypass" // bypass has no cache entry to rebuild
		if err := s.observeExecution(ctx, key, hash, node, cached, bound, ann, replan, b, reg, resp); err != nil {
			return nil, planKey, key, classify(err, false)
		}
	}
	attrs := rel.Schema().Attrs()
	resp.Columns = make([]string, len(attrs))
	for i, a := range attrs {
		resp.Columns[i] = a.String()
	}
	resp.Rows = make([][]any, rel.Len())
	for i, t := range rel.Tuples() {
		row := make([]any, len(t))
		for j, v := range t {
			row[j] = jsonValue(v)
		}
		resp.Rows[i] = row
	}
	return resp, planKey, key, nil
}

// optimizeTemplate runs the full optimizer on the parameterized
// template under the request's budget. In feedback mode the feedback
// store rides along, so re-optimizations rank plans with corrected
// cardinalities (a cold store changes nothing).
func (s *Service) optimizeTemplate(node plan.Node, b *guard.Budget, reg *obs.Registry) (*cachedPlan, error) {
	o := optimizer.New(s.est)
	o.Opts.Workers = s.cfg.Workers
	if s.cfg.MaxPlans > 0 {
		o.Opts.MaxPlans = s.cfg.MaxPlans
	}
	o.Opts.Budget = b
	o.Opts.Obs = reg
	o.Opts.Feedback = s.fb
	res, err := o.Optimize(node, s.db)
	if err != nil {
		return nil, err
	}
	cp := &cachedPlan{
		plan:          res.Best.Plan,
		nparams:       plan.ParamCount(node),
		degraded:      res.Degraded,
		fbCorrections: res.FeedbackCorrections,
	}
	if s.fb != nil {
		// Snapshot what the optimizer believed, subtree by subtree —
		// the baseline later executions measure drift against. The
		// session memoizes, so this is one pass over distinct subtrees.
		sess := s.est.NewSession(reg)
		sess.SetBudget(b)
		sess.SetFeedback(s.fb)
		cp.estRows = make(map[string]float64)
		var walkErr error
		plan.Walk(cp.plan, func(n plan.Node) {
			if walkErr != nil || len(n.Children()) == 0 {
				return
			}
			est, err := sess.Rows(n)
			if err != nil {
				walkErr = err
				return
			}
			cp.estRows[plan.Key(n)] = est
		})
		if walkErr != nil {
			return nil, walkErr
		}
	}
	return cp, nil
}

// observeExecution closes the feedback loop after one instrumented
// execution: per-subtree actual cardinalities are compared against
// the (feedback-corrected) estimates the optimizer would see today,
// folded into the store keyed by TEMPLATE subtree fingerprint (so the
// learning transfers across parameter bindings), and a template that
// keeps drifting past the q-error threshold is re-planned in place.
func (s *Service) observeExecution(ctx context.Context, key string, hash uint64, node plan.Node, cached *cachedPlan, bound plan.Node, ann plan.Annotations, replan bool, b *guard.Budget, reg *obs.Registry, resp *Response) error {
	// Drift is measured against the estimates the cached plan was
	// optimized with (cached.estRows), not a freshly corrected
	// session: corrections recorded by earlier runs would otherwise
	// make the estimates look perfect while the cached plan — built
	// before those corrections — is still the stale one.
	type obsRow struct {
		key    string
		est    float64
		actual int
	}
	var rows []obsRow
	maxQ := 1.0
	var walk func(t, bnd plan.Node)
	walk = func(t, bnd plan.Node) {
		// BindParams preserves tree shape: the bound tree is the
		// template with Param leaves swapped for Consts, node for node.
		tc, bc := t.Children(), bnd.Children()
		if len(tc) != len(bc) {
			return
		}
		for i := range tc {
			walk(tc[i], bc[i])
		}
		if len(tc) == 0 {
			return // scans are exact; only composite subtrees are corrected
		}
		a, ok := ann[bnd]
		if !ok {
			return
		}
		key := plan.Key(t)
		est, ok := cached.estRows[key]
		if !ok {
			return
		}
		if q := flight.QError(est, a.Rows); q > maxQ {
			maxQ = q
		}
		rows = append(rows, obsRow{key: key, est: est, actual: a.Rows})
	}
	walk(cached.plan, bound)
	for _, r := range rows {
		if err := s.fb.Record(r.key, r.est, float64(r.actual)); err != nil {
			return err
		}
	}
	reg.Counter("feedback.corrections").Add(int64(len(rows)))

	ts := s.statsFor(key)
	ts.corrections.Add(int64(len(rows)))
	ts.lastQMilli.Store(int64(maxQ * 1000))
	resp.MaxQError = maxQ
	resp.FeedbackCorrections = cached.fbCorrections
	resp.ReplanGen = ts.gen.Load()

	if maxQ < s.cfg.ReplanQError || !replan {
		if maxQ < s.cfg.ReplanQError {
			ts.drift.Store(0)
		}
		return nil
	}
	streak := ts.drift.Add(1)
	// CompareAndSwap elects exactly one of the racing requests that
	// crossed the threshold to run the re-plan; the others see the
	// reset streak and move on.
	if streak < int64(s.cfg.ReplanAfter) || !ts.drift.CompareAndSwap(streak, 0) {
		return nil
	}
	reg.Counter("feedback.drift_trips").Inc()
	if err := s.replanTemplate(ctx, key, hash, node, b, reg); err != nil {
		// A failed re-plan never fails the request (its results are
		// already in hand) and never costs the cache its old entry —
		// Refresh keeps the previous plan serving on error.
		reg.Counter("feedback.replan_errors").Inc()
		return nil
	}
	reg.Counter("feedback.replans").Inc()
	resp.ReplanGen = ts.gen.Add(1)
	resp.Replanned = true
	return nil
}

// replanTemplate atomically rebuilds key's cache entry from a fresh
// feedback-corrected optimization. Concurrent replans of the same
// template collapse into one build (singleflight), and the old entry
// serves until the new one lands.
func (s *Service) replanTemplate(ctx context.Context, key string, hash uint64, node plan.Node, b *guard.Budget, reg *obs.Registry) error {
	_, err := s.cache.Refresh(ctx, key, hash, func() (any, int64, error) {
		cp, err := s.optimizeTemplate(node, b, reg)
		if err != nil {
			return nil, 0, err
		}
		return cp, planBytes(key, plan.Key(cp.plan)), nil
	})
	return err
}

// record deposits the request into the flight recorder and folds the
// run's private registry into the aggregate.
func (s *Service) record(req Request, resp *Response, planKey, templateKey string, reg *obs.Registry, b *guard.Budget, start time.Time, runErr error) {
	rec := flight.Record{
		Start:       start,
		Query:       req.SQL,
		DurNs:       time.Since(start).Nanoseconds(),
		PlanKey:     planKey,
		BudgetTrips: b.Trips(),
		Counters:    flightCounters(reg),
	}
	if templateKey != "" {
		rec.Hash = fnv64(templateKey)
	}
	if q := b.QueueWait(); q > 0 {
		rec.Phases = append(rec.Phases, flight.Phase{Name: "queued", Ns: q.Nanoseconds()})
	}
	if resp != nil {
		rec.RowsOut = len(resp.Rows)
		rec.Degraded = resp.Degraded
		if resp.OptimizeNs > 0 {
			rec.Phases = append(rec.Phases, flight.Phase{Name: "optimize", Ns: resp.OptimizeNs})
		}
		rec.Phases = append(rec.Phases,
			flight.Phase{Name: "bind", Ns: resp.BindNs},
			flight.Phase{Name: "execute", Ns: resp.ExecNs})
	}
	if runErr != nil {
		rec.Error = runErr.Error()
	}
	s.ob.Registry.Merge(reg)
	s.ob.Flight.Add(rec)
}

// fnv64 is FNV-1a over the template key — the flight record's query
// hash, grouping records of the same template.
func fnv64(s string) uint64 {
	const offset, prime = 14695981039346656037, 1099511628211
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	return h
}

// jsonValue converts a value to its natural JSON representation.
func jsonValue(v value.Value) any {
	switch v.Kind() {
	case value.KindInt:
		return v.Int()
	case value.KindFloat:
		return v.Float()
	case value.KindString:
		return v.Str()
	case value.KindBool:
		return v.Bool()
	default:
		return nil
	}
}
