package reorder

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/datagen"
	"repro/internal/experiments"
	"repro/internal/relation"
	"repro/internal/value"
)

func tinyDB() Database {
	t1 := relation.NewBuilder("t", "a", "b").
		Row(value.NewInt(1), value.NewInt(10)).
		Row(value.NewInt(2), value.NewInt(20)).
		Relation()
	s1 := relation.NewBuilder("s", "a", "c").
		Row(value.NewInt(2), value.NewInt(200)).
		Relation()
	return Database{"t": t1, "s": s1}
}

func TestFacadeEndToEnd(t *testing.T) {
	db := tinyDB()
	query := "select t.a, s.c from t left outer join s on t.a = s.a"
	node, err := Parse(query, db)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Optimize(node, db)
	if err != nil {
		t.Fatal(err)
	}
	if res.Best.Cost > res.Original.Cost {
		t.Error("optimizer must not regress")
	}
	rows, err := Execute(res.Best.Plan, db)
	if err != nil {
		t.Fatal(err)
	}
	if rows.Len() != 2 {
		t.Errorf("rows = %d, want 2", rows.Len())
	}
	if s := Explain(res); !strings.Contains(s, "best plan") {
		t.Errorf("Explain output: %q", s)
	}
	if s := ExplainPlan(node); !strings.Contains(s, "LOJ") {
		t.Errorf("ExplainPlan output: %q", s)
	}
}

func TestFacadeExecuteSQL(t *testing.T) {
	db := tinyDB()
	rows, err := ExecuteSQL("select t.a from t where t.b >= 20", db)
	if err != nil {
		t.Fatal(err)
	}
	if rows.Len() != 1 {
		t.Errorf("rows = %d", rows.Len())
	}
	if _, err := ExecuteSQL("select nope from t", db); err == nil {
		t.Error("bad SQL must fail")
	}
}

func TestFacadeHypergraphAndTrees(t *testing.T) {
	q4 := experiments.Q4()
	h, err := Hypergraph(q4)
	if err != nil {
		t.Fatal(err)
	}
	if len(h.Nodes) != 5 || len(h.Edges) != 4 {
		t.Errorf("hypergraph shape: %d nodes, %d edges", len(h.Nodes), len(h.Edges))
	}
	broken, strict, err := AssociationTreeCounts(q4)
	if err != nil {
		t.Fatal(err)
	}
	if strict != 7 || broken <= strict {
		t.Errorf("tree counts: broken %d, strict %d", broken, strict)
	}
}

func TestFacadeEnumerateEquivalence(t *testing.T) {
	q := experiments.Query2()
	plans := Enumerate(q, 100)
	if len(plans) < 3 {
		t.Fatalf("only %d plans", len(plans))
	}
	db := Database{}
	for i, name := range []string{"r1", "r2", "r3"} {
		db[name] = datagen.Uniform(newRand(int64(i)), name, datagen.UniformConfig{Rows: 20, Domain: 5, NullFrac: 0.1})
	}
	for _, p := range plans {
		ok, err := Equivalent(q, p, db)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("plan not equivalent: %s", p)
		}
	}
	orders := JoinOrders(plans)
	if len(orders) != 3 {
		t.Errorf("join orders = %v, want all three linear orders", orders)
	}
}

// TestFacadeSupplierOptimization is the E7 integration check through
// the public API: the full optimizer beats the baseline on the
// Example 1.1 workload and stays correct.
func TestFacadeSupplierOptimization(t *testing.T) {
	cfg := datagen.DefaultSupplierConfig
	cfg.DetailRows = 2000
	db := datagen.Supplier(cfg)
	q := datagen.SupplierQuery()
	full, err := Optimize(q, db)
	if err != nil {
		t.Fatal(err)
	}
	base, err := OptimizeBaseline(q, db)
	if err != nil {
		t.Fatal(err)
	}
	if full.Best.Cost >= base.Best.Cost {
		t.Errorf("full best %.0f should beat baseline %.0f", full.Best.Cost, base.Best.Cost)
	}
	ok, err := Equivalent(q, full.Best.Plan, db)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("chosen plan not equivalent")
	}
}

func TestFacadeSimplify(t *testing.T) {
	q, err := Parse("select t.a from t left outer join s on t.a = s.a where s.c >= 0", tinyDB())
	if err != nil {
		t.Fatal(err)
	}
	s := Simplify(q)
	text := ExplainPlan(s)
	if strings.Contains(text, "LOJ") {
		t.Errorf("the filter on s should simplify the outer join:\n%s", text)
	}
}

func TestFacadeOptimizeTreesAndDP(t *testing.T) {
	db := tinyDB()
	join, err := Parse("select t.a from t join s on t.a = s.a", db)
	if err != nil {
		t.Fatal(err)
	}
	// Strip the projection for the pure join-tree enumerators.
	inner := join.Children()[0]
	trees, err := OptimizeTrees(inner, db)
	if err != nil {
		t.Fatal(err)
	}
	dp, err := OptimizeDP(inner, db)
	if err != nil {
		t.Fatal(err)
	}
	if trees.Best.Cost != dp.Best.Cost {
		t.Errorf("tree best %.1f != DP best %.1f", trees.Best.Cost, dp.Best.Cost)
	}
}

func TestFacadeLoadCSVDir(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "x.csv"), []byte("a,b\n1,2\n3,\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "ignore.txt"), []byte("nope"), 0o644); err != nil {
		t.Fatal(err)
	}
	db, err := LoadCSVDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(db) != 1 || db["x"].Len() != 2 {
		t.Fatalf("loaded %v", db)
	}
	rows, err := ExecuteSQL("select a from x where b = 2", db)
	if err != nil {
		t.Fatal(err)
	}
	if rows.Len() != 1 {
		t.Errorf("rows = %d", rows.Len())
	}
	if _, err := LoadCSVDir(filepath.Join(dir, "nope")); err == nil {
		t.Error("missing dir must fail")
	}
	empty := t.TempDir()
	if _, err := LoadCSVDir(empty); err == nil {
		t.Error("empty dir must fail")
	}
}

// TestFacadePlanSerialization round-trips every plan of a saturated
// equivalence class through JSON.
func TestFacadePlanSerialization(t *testing.T) {
	q := experiments.Query2()
	for _, p := range Enumerate(q, 50) {
		data, err := EncodePlan(p)
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		back, err := DecodePlan(data)
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		if back.String() != p.String() {
			t.Errorf("round trip changed %s into %s", p, back)
		}
	}
	if s := PlanDOT(q); !strings.Contains(s, "digraph") {
		t.Error("PlanDOT output wrong")
	}
}
