// EXPLAIN ANALYZE: optimize a query, execute the chosen plan through
// the instrumented executor, and bundle the annotated plan, optimizer
// counters and phase trace into one report that renders as text and
// round-trips through JSON (the machine-readable dump cmd/reorder
// -statsjson emits and the benchmarks consume).
package reorder

import (
	"context"
	"encoding/json"
	"fmt"
	"strings"
	"time"

	"repro/internal/executor"
	"repro/internal/guard"
	"repro/internal/obs"
	"repro/internal/obs/flight"
	"repro/internal/optimizer"
	"repro/internal/plan"
	"repro/internal/relation"
	"repro/internal/stats"
	"repro/internal/stats/feedback"
)

// PhaseNs is one optimizer phase's wall time in the JSON report.
type PhaseNs struct {
	Name string `json:"name"`
	Ns   int64  `json:"ns"`
}

// AnalyzeReport is the result of ExplainAnalyze: the chosen plan with
// per-operator actual-vs-estimated row counts and timings, the
// optimizer's enumeration counters and phase timings, and the
// aggregate metrics registry of the run.
type AnalyzeReport struct {
	Query        string  `json:"query"`    // the query as written (canonical plan string)
	BestPlan     string  `json:"bestPlan"` // the chosen plan (canonical plan string)
	Considered   int     `json:"considered"`
	OriginalCost float64 `json:"originalCost"`
	BestCost     float64 `json:"bestCost"`
	RowsOut      int     `json:"rowsOut"`
	Engine       string  `json:"engine,omitempty"`   // execution engine: "tuple" (default) or "vector"
	Degraded     string  `json:"degraded,omitempty"` // non-empty when a budget trip truncated enumeration
	// Feedback provenance: how many estimates the optimizer took from
	// the cardinality-feedback store, this run's worst subtree
	// q-error, and whether the plan is a feedback-driven re-plan.
	FeedbackCorrections int     `json:"feedbackCorrections,omitempty"`
	MaxQError           float64 `json:"maxQError,omitempty"`
	Replanned           bool    `json:"replanned,omitempty"`
	// Order provenance (memo path, root ORDER BY only): the required
	// order, the best plan's delivered order, and how many enforcer
	// sorts satisfy the gap (0 = the requirement was eliminated).
	RequiredOrder   string             `json:"requiredOrder,omitempty"`
	DeliveredOrder  string             `json:"deliveredOrder,omitempty"`
	OrderEnforced   int                `json:"orderEnforced,omitempty"`
	OrderEliminated bool               `json:"orderEliminated,omitempty"`
	Phases          []PhaseNs          `json:"phases,omitempty"`
	RuleFirings     map[string]int     `json:"ruleFirings,omitempty"`
	Metrics         obs.Snapshot       `json:"metrics"`
	Spans           []obs.SpanSnapshot `json:"spans,omitempty"`
	PlanTree        json.RawMessage    `json:"planTree"` // annotated plan (plan.EncodeJSONAnnotated)

	node plan.Node
	ann  plan.Annotations
}

// ExplainAnalyze optimizes q, executes the chosen plan with the
// instrumented executor, and attaches estimated row counts from the
// same statistics the optimizer ranked with — making
// estimated-vs-actual cardinality errors visible per operator. The
// run uses a private registry and tracer, so concurrent callers do
// not mix metrics.
func ExplainAnalyze(q Node, db Database) (*AnalyzeReport, error) {
	return ExplainAnalyzeWorkers(q, db, 0)
}

// ExplainAnalyzeWorkers is ExplainAnalyze with the optimizer's
// saturate and cost phases spread over the given number of goroutines
// (0 or 1 serial, < 0 GOMAXPROCS). The report is identical for any
// worker count; only the phase wall times change.
func ExplainAnalyzeWorkers(q Node, db Database, workers int) (*AnalyzeReport, error) {
	return explainAnalyze(q, db, workers, nil, obs.NewRegistry(), nil, false)
}

// ExplainAnalyzeVectorized is ExplainAnalyze with the chosen plan
// executed on the columnar vectorized engine instead of the tuple
// engine. The report's per-operator annotations carry the vectorized
// extras — spill partitions/bytes/recursions and the
// exec.vector.fallback.* counters land in the metrics snapshot — and
// Engine is "vector".
func ExplainAnalyzeVectorized(q Node, db Database) (*AnalyzeReport, error) {
	return explainAnalyze(q, db, 0, nil, obs.NewRegistry(), nil, true)
}

// ExplainAnalyzeVectorizedBudget is ExplainAnalyzeBudget on the
// vectorized engine; joins whose build side exceeds the byte budget's
// headroom spill to disk instead of aborting.
func ExplainAnalyzeVectorizedBudget(ctx context.Context, q Node, db Database, workers int, l Limits) (*AnalyzeReport, error) {
	reg := obs.NewRegistry()
	return explainAnalyze(q, db, workers, guard.New(ctx, l, reg), reg, nil, true)
}

// ExplainAnalyzeFeedback is the one-shot feedback loop behind
// cmd/reorder's -feedback flag: run EXPLAIN ANALYZE once recording
// per-subtree actual cardinalities into a fresh feedback store, and —
// when the worst subtree q-error reaches replanQ (≤0 means 10) —
// re-optimize with the corrected estimates and re-execute, returning
// the re-planned report (Replanned set, FeedbackCorrections counting
// the estimates the second optimization took from the store). A query
// whose estimates hold up returns the first report unchanged.
func ExplainAnalyzeFeedback(ctx context.Context, q Node, db Database, workers int, l Limits, ob *Observer, replanQ float64) (*AnalyzeReport, error) {
	if replanQ <= 0 {
		replanQ = 10
	}
	fb := feedback.New(feedback.Options{})
	reg := obs.NewRegistry()
	first, err := explainAnalyzeFeedback(q, db, workers, guard.New(ctx, l, reg), reg, ob, false, fb)
	if err != nil {
		return nil, err
	}
	if first.MaxQError < replanQ {
		return first, nil
	}
	reg = obs.NewRegistry()
	second, err := explainAnalyzeFeedback(q, db, workers, guard.New(ctx, l, reg), reg, ob, false, fb)
	if err != nil {
		return nil, err
	}
	second.Replanned = true
	return second, nil
}

// ExplainAnalyzeBudget is ExplainAnalyze under resource governance:
// ctx cancellation/deadline and l's limits bound both the
// optimization (degrading gracefully on an exprs trip — see
// AnalyzeReport.Degraded) and the instrumented execution (aborting
// with a guard error on a rows/bytes trip). Guard counters land in
// the report's private registry.
func ExplainAnalyzeBudget(ctx context.Context, q Node, db Database, workers int, l Limits) (*AnalyzeReport, error) {
	reg := obs.NewRegistry()
	return explainAnalyze(q, db, workers, guard.New(ctx, l, reg), reg, nil, false)
}

// explainAnalyze runs the optimize→execute pipeline against a private
// registry (so concurrent callers do not mix metrics) and, when an
// Observer is attached, folds the run into the process-wide aggregate:
// the private registry merges into ob.Registry and one flight.Record —
// including the per-operator q-error rows — lands in ob.Flight.
func explainAnalyze(q Node, db Database, workers int, b *guard.Budget, reg *obs.Registry, ob *Observer, vec bool) (*AnalyzeReport, error) {
	return explainAnalyzeFeedback(q, db, workers, b, reg, ob, vec, nil)
}

// explainAnalyzeFeedback is explainAnalyze with an optional
// cardinality-feedback store: the optimizer consults it for corrected
// estimates, execution runs adaptively, per-operator estimates come
// from a feedback-aware session, and each composite subtree's actual
// cardinality is recorded back into the store.
func explainAnalyzeFeedback(q Node, db Database, workers int, b *guard.Budget, reg *obs.Registry, ob *Observer, vec bool, fb *feedback.Store) (*AnalyzeReport, error) {
	start := time.Now()
	tracer := obs.NewTracer()
	est := stats.NewEstimator(stats.FromDatabase(db))
	opt := optimizer.New(est)
	opt.Opts.Obs = reg
	opt.Opts.Tracer = tracer
	opt.Opts.Workers = workers
	opt.Opts.Budget = b
	opt.Opts.Feedback = fb
	res, err := opt.Optimize(q, db)
	if err != nil {
		ob.record(q, nil, nil, reg, b, start, 0, err, 0, nil)
		return nil, err
	}

	execSpan := tracer.Start("execute")
	execStart := time.Now()
	var out *relation.Relation
	var ann plan.Annotations
	switch {
	case vec:
		out, ann, err = executor.RunVectorizedInstrumented(res.Best.Plan, db, reg, b)
	case fb != nil:
		out, ann, err = executor.RunInstrumentedAdaptive(res.Best.Plan, db, reg, b,
			&executor.Adapt{SwapFactor: 4, Spill: true})
	default:
		out, ann, err = executor.RunInstrumentedGuarded(res.Best.Plan, db, reg, b)
	}
	execNs := time.Since(execStart).Nanoseconds()
	execSpan.End()
	if err != nil {
		ob.record(q, res.Best.Plan, res, reg, b, start, execNs, err, 0, nil)
		return nil, err
	}
	execSpan.Annotate("rows=%d", out.Len())

	// Attach the optimizer's estimates so every operator line shows
	// actual vs estimated cardinality, and fold each operator's
	// q-error into the per-op-type histograms. The flight OpStat rows
	// key by subtree fingerprint, so estimate accuracy learned here
	// transfers to any plan containing the same subtree.
	var ops []flight.OpStat
	qerr := reg.HistogramVec("executor.qerror_milli", "op")
	sess := est.NewSession(reg)
	sess.SetFeedback(fb) // nil-safe: static estimates when no store
	maxQ := 1.0
	type obsRow struct {
		key         string
		est, actual float64
	}
	var corrections []obsRow
	plan.Walk(res.Best.Plan, func(n plan.Node) {
		a := ann[n]
		if a == nil {
			return
		}
		if rows, err := sess.Rows(n); err == nil {
			a.EstRows = rows
		}
		op := executor.OpName(n)
		qe := flight.QError(a.EstRows, a.Rows)
		qerr.With(op).Observe(int64(qe*1000 + 0.5))
		if fb != nil && len(n.Children()) > 0 {
			if qe > maxQ {
				maxQ = qe
			}
			corrections = append(corrections, obsRow{key: plan.Key(n), est: a.EstRows, actual: float64(a.Rows)})
		}
		ops = append(ops, flight.OpStat{
			Op:      op,
			Key:     plan.Key(n),
			EstRows: a.EstRows,
			Rows:    a.Rows,
			QError:  qe,
			Ns:      a.Elapsed.Nanoseconds(),
		})
	})
	// Record actuals only after every estimate above was computed: the
	// report must show what the optimizer believed going in, not the
	// post-hoc corrected figures.
	for _, c := range corrections {
		if err := fb.Record(c.key, c.est, c.actual); err != nil {
			return nil, err
		}
	}

	tree, err := plan.EncodeJSONAnnotated(res.Best.Plan, ann)
	if err != nil {
		return nil, err
	}
	r := &AnalyzeReport{
		Query:        q.String(),
		BestPlan:     res.Best.Plan.String(),
		Considered:   res.Considered,
		OriginalCost: res.Original.Cost,
		BestCost:     res.Best.Cost,
		RowsOut:      out.Len(),
		Engine:       engineName(vec),
		Degraded:     res.Degraded,
		RuleFirings:  res.RuleFirings,
		Metrics:      reg.Snapshot(),
		Spans:        tracer.Snapshot(),
		PlanTree:     tree,
		node:         res.Best.Plan,
		ann:          ann,
	}
	if fb != nil {
		r.FeedbackCorrections = res.FeedbackCorrections
		r.MaxQError = maxQ
	}
	if res.Order != nil {
		r.RequiredOrder = res.Order.Required.String()
		r.DeliveredOrder = res.Order.Delivered.String()
		r.OrderEnforced = res.Order.Enforced
		r.OrderEliminated = res.Order.Eliminated()
	}
	// Queue wait, when a serving layer admitted this run, leads the
	// phase list: it is wall time the client experienced before any
	// optimizer work, and surfacing it is what makes shed decisions
	// explainable from a single report.
	if qw := b.QueueWait(); qw > 0 {
		r.Phases = append(r.Phases, PhaseNs{Name: "queued", Ns: qw.Nanoseconds()})
	}
	for _, p := range res.Phases {
		r.Phases = append(r.Phases, PhaseNs{Name: p.Name, Ns: p.Elapsed.Nanoseconds()})
	}
	ob.record(q, res.Best.Plan, res, reg, b, start, execNs, nil, out.Len(), ops)
	return r, nil
}

// engineName is the stable engine label benchmark baselines and
// reports key by.
func engineName(vec bool) string {
	if vec {
		return "vector"
	}
	return "tuple"
}

// JSON serializes the report; DecodeAnalyzeReport inverts it.
func (r *AnalyzeReport) JSON() ([]byte, error) { return json.MarshalIndent(r, "", "  ") }

// DecodeAnalyzeReport deserializes a report produced by JSON,
// reconstructing the annotated plan tree for rendering.
func DecodeAnalyzeReport(data []byte) (*AnalyzeReport, error) {
	var r AnalyzeReport
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, err
	}
	node, ann, err := plan.DecodeJSONAnnotated(r.PlanTree)
	if err != nil {
		return nil, fmt.Errorf("reorder: decoding annotated plan: %w", err)
	}
	r.node, r.ann = node, ann
	return &r, nil
}

// Plan returns the chosen plan and its per-operator annotations.
func (r *AnalyzeReport) Plan() (Node, plan.Annotations) { return r.node, r.ann }

// String renders the report in the EXPLAIN ANALYZE style: header,
// annotated operator tree, phase timings and the run's counters.
func (r *AnalyzeReport) String() string {
	var b strings.Builder
	b.WriteString("EXPLAIN ANALYZE\n")
	fmt.Fprintf(&b, "plans considered: %d\n", r.Considered)
	fmt.Fprintf(&b, "original cost:    %.1f\n", r.OriginalCost)
	fmt.Fprintf(&b, "best cost:        %.1f\n", r.BestCost)
	fmt.Fprintf(&b, "rows returned:    %d\n", r.RowsOut)
	if r.Engine != "" {
		fmt.Fprintf(&b, "engine:           %s\n", r.Engine)
	}
	if r.Degraded != "" {
		fmt.Fprintf(&b, "degraded:         %s (best-effort plan, not the full-class optimum)\n", r.Degraded)
	}
	if r.FeedbackCorrections > 0 || r.Replanned {
		fmt.Fprintf(&b, "feedback:         corrected %d estimates", r.FeedbackCorrections)
		if r.Replanned {
			b.WriteString(" (replanned)")
		}
		b.WriteString("\n")
	}
	if r.RequiredOrder != "" {
		prov := fmt.Sprintf("enforced %d", r.OrderEnforced)
		if r.OrderEliminated {
			prov = "eliminated"
		}
		fmt.Fprintf(&b, "order:            required %s delivered %s (%s)\n", r.RequiredOrder, r.DeliveredOrder, prov)
	}
	if len(r.Phases) > 0 {
		parts := make([]string, len(r.Phases))
		for i, p := range r.Phases {
			parts[i] = fmt.Sprintf("%s %s", p.Name, time.Duration(p.Ns).Round(time.Microsecond))
		}
		fmt.Fprintf(&b, "optimizer phases: %s\n", strings.Join(parts, ", "))
	}
	b.WriteString("\n")
	b.WriteString(plan.IndentAnnotated(r.node, r.ann))
	b.WriteString("\ncounters:\n")
	b.WriteString(r.Metrics.String())
	return b.String()
}

// Trace renders the span tree of the run (optimizer phases plus
// execution), the -trace output.
func (r *AnalyzeReport) Trace() string { return obs.RenderSpans(r.Spans) }
