package main

import (
	"encoding/json"
	"strings"
	"testing"
)

func runCapture(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb strings.Builder
	code = run(args, &out, &errb)
	return code, out.String(), errb.String()
}

// TestRunNoArgsExitsNonZero: neither -query nor -demo must fail with
// a usage message, not silently run a default.
func TestRunNoArgsExitsNonZero(t *testing.T) {
	code, _, stderr := runCapture(t)
	if code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
	for _, want := range []string{"provide -query or -demo", "usage: reorder"} {
		if !strings.Contains(stderr, want) {
			t.Errorf("stderr missing %q:\n%s", want, stderr)
		}
	}
}

func TestRunUnknownDemo(t *testing.T) {
	code, _, stderr := runCapture(t, "-demo", "nope")
	if code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
	if !strings.Contains(stderr, `unknown demo "nope"`) {
		t.Errorf("stderr: %s", stderr)
	}
}

func TestRunBadFlag(t *testing.T) {
	code, _, _ := runCapture(t, "-definitely-not-a-flag")
	if code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
}

// TestRunSupplierStats is the CLI acceptance path: -demo supplier
// -stats prints an EXPLAIN ANALYZE plan with per-operator actual
// rows, timings and the optimizer's phase and rule counters.
func TestRunSupplierStats(t *testing.T) {
	code, stdout, stderr := runCapture(t, "-demo", "supplier", "-stats")
	if code != 0 {
		t.Fatalf("exit code = %d, stderr: %s", code, stderr)
	}
	for _, want := range []string{
		"EXPLAIN ANALYZE",
		"actual rows=",
		"time=",
		"optimizer phases:",
		"explore",
		"optimizer.rule_applied",
		"executor.op.scan",
	} {
		if !strings.Contains(stdout, want) {
			t.Errorf("stdout missing %q", want)
		}
	}
}

func TestRunSupplierTrace(t *testing.T) {
	code, stdout, stderr := runCapture(t, "-demo", "supplier", "-trace")
	if code != 0 {
		t.Fatalf("exit code = %d, stderr: %s", code, stderr)
	}
	for _, want := range []string{"optimize", "explore", "execute"} {
		if !strings.Contains(stdout, want) {
			t.Errorf("trace missing %q:\n%s", want, stdout)
		}
	}
}

// TestRunStatsJSON: -statsjson emits a parseable report whose plan
// tree carries actual-row annotations.
func TestRunStatsJSON(t *testing.T) {
	code, stdout, stderr := runCapture(t, "-demo", "supplier", "-statsjson")
	if code != 0 {
		t.Fatalf("exit code = %d, stderr: %s", code, stderr)
	}
	var rep struct {
		RowsOut  int             `json:"rowsOut"`
		Phases   []any           `json:"phases"`
		PlanTree json.RawMessage `json:"planTree"`
	}
	if err := json.Unmarshal([]byte(stdout), &rep); err != nil {
		t.Fatalf("output is not JSON: %v", err)
	}
	if len(rep.Phases) == 0 {
		t.Error("report has no optimizer phases")
	}
	if !strings.Contains(string(rep.PlanTree), `"actual"`) {
		t.Error("plan tree has no actual-row annotations")
	}
}

func TestRunQueryPathWithStats(t *testing.T) {
	code, stdout, stderr := runCapture(t,
		"-query", "select sup_detail.supkey from sup_detail where sup_detail.suprating = 'BANKRUPT'",
		"-stats")
	if code != 0 {
		t.Fatalf("exit code = %d, stderr: %s", code, stderr)
	}
	if !strings.Contains(stdout, "best plan") {
		t.Error("missing optimizer explanation")
	}
	if !strings.Contains(stdout, "EXPLAIN ANALYZE") {
		t.Error("missing EXPLAIN ANALYZE report")
	}
}

func TestRunDemoQ4RejectsStats(t *testing.T) {
	code, _, stderr := runCapture(t, "-demo", "q4", "-stats")
	if code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
	if !strings.Contains(stderr, "no executable database") {
		t.Errorf("stderr: %s", stderr)
	}
}
