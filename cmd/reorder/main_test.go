package main

import (
	"encoding/json"
	"net/http"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
)

func runCapture(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb strings.Builder
	code = run(args, &out, &errb)
	return code, out.String(), errb.String()
}

// TestRunNoArgsExitsNonZero: neither -query nor -demo must fail with
// a usage message, not silently run a default.
func TestRunNoArgsExitsNonZero(t *testing.T) {
	code, _, stderr := runCapture(t)
	if code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
	for _, want := range []string{"provide -query or -demo", "usage: reorder"} {
		if !strings.Contains(stderr, want) {
			t.Errorf("stderr missing %q:\n%s", want, stderr)
		}
	}
}

func TestRunUnknownDemo(t *testing.T) {
	code, _, stderr := runCapture(t, "-demo", "nope")
	if code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
	if !strings.Contains(stderr, `unknown demo "nope"`) {
		t.Errorf("stderr: %s", stderr)
	}
}

func TestRunBadFlag(t *testing.T) {
	code, _, _ := runCapture(t, "-definitely-not-a-flag")
	if code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
}

// TestRunSupplierStats is the CLI acceptance path: -demo supplier
// -stats prints an EXPLAIN ANALYZE plan with per-operator actual
// rows, timings and the optimizer's phase and rule counters.
func TestRunSupplierStats(t *testing.T) {
	code, stdout, stderr := runCapture(t, "-demo", "supplier", "-stats")
	if code != 0 {
		t.Fatalf("exit code = %d, stderr: %s", code, stderr)
	}
	for _, want := range []string{
		"EXPLAIN ANALYZE",
		"actual rows=",
		"time=",
		"optimizer phases:",
		"explore",
		"optimizer.rule_applied",
		"executor.op.scan",
	} {
		if !strings.Contains(stdout, want) {
			t.Errorf("stdout missing %q", want)
		}
	}
}

func TestRunSupplierTrace(t *testing.T) {
	code, stdout, stderr := runCapture(t, "-demo", "supplier", "-trace")
	if code != 0 {
		t.Fatalf("exit code = %d, stderr: %s", code, stderr)
	}
	for _, want := range []string{"optimize", "explore", "execute"} {
		if !strings.Contains(stdout, want) {
			t.Errorf("trace missing %q:\n%s", want, stdout)
		}
	}
}

// TestRunStatsJSON: -statsjson emits a parseable report whose plan
// tree carries actual-row annotations.
func TestRunStatsJSON(t *testing.T) {
	code, stdout, stderr := runCapture(t, "-demo", "supplier", "-statsjson")
	if code != 0 {
		t.Fatalf("exit code = %d, stderr: %s", code, stderr)
	}
	var rep struct {
		RowsOut  int             `json:"rowsOut"`
		Phases   []any           `json:"phases"`
		PlanTree json.RawMessage `json:"planTree"`
	}
	if err := json.Unmarshal([]byte(stdout), &rep); err != nil {
		t.Fatalf("output is not JSON: %v", err)
	}
	if len(rep.Phases) == 0 {
		t.Error("report has no optimizer phases")
	}
	if !strings.Contains(string(rep.PlanTree), `"actual"`) {
		t.Error("plan tree has no actual-row annotations")
	}
}

func TestRunQueryPathWithStats(t *testing.T) {
	code, stdout, stderr := runCapture(t,
		"-query", "select sup_detail.supkey from sup_detail where sup_detail.suprating = 'BANKRUPT'",
		"-stats")
	if code != 0 {
		t.Fatalf("exit code = %d, stderr: %s", code, stderr)
	}
	if !strings.Contains(stdout, "best plan") {
		t.Error("missing optimizer explanation")
	}
	if !strings.Contains(stdout, "EXPLAIN ANALYZE") {
		t.Error("missing EXPLAIN ANALYZE report")
	}
}

func TestRunDemoQ4RejectsStats(t *testing.T) {
	code, _, stderr := runCapture(t, "-demo", "q4", "-stats")
	if code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
	if !strings.Contains(stderr, "no executable database") {
		t.Errorf("stderr: %s", stderr)
	}
}

// syncBuffer is a strings.Builder safe for the writer goroutine
// (run's stderr) and the polling test to share.
type syncBuffer struct {
	mu sync.Mutex
	b  strings.Builder
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// TestRunMetricsAddr runs the CLI with -metrics-addr and scrapes the
// endpoints during the linger window: /metrics must pass the strict
// exposition parse and /debug/queries must hold the run's record.
func TestRunMetricsAddr(t *testing.T) {
	var stdout strings.Builder
	stderr := &syncBuffer{}
	done := make(chan int, 1)
	go func() {
		done <- run([]string{
			"-demo", "supplier", "-stats",
			"-metrics-addr", "127.0.0.1:0",
			"-metrics-linger", "2s",
			"-slow-query", "1ns",
		}, &stdout, stderr)
	}()

	// The address is printed to stderr as soon as the listener is up.
	re := regexp.MustCompile(`metrics: serving on http://(\S+)/metrics`)
	var addr string
	deadline := time.Now().Add(10 * time.Second)
	for addr == "" {
		if m := re.FindStringSubmatch(stderr.String()); m != nil {
			addr = m[1]
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("metrics address never printed; stderr: %s", stderr.String())
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Wait for the run itself to finish so the flight record exists;
	// the server lingers past this point.
	waitRec := time.Now().Add(10 * time.Second)
	var dump struct {
		Len       int `json:"len"`
		SlowCount int `json:"slowCount"`
		Records   []struct {
			Query   string `json:"query"`
			PlanKey string `json:"planKey"`
			Phases  []struct {
				Name string `json:"name"`
			} `json:"phases"`
			Ops []struct {
				Op     string  `json:"op"`
				QError float64 `json:"qError"`
			} `json:"ops"`
		} `json:"records"`
	}
	for {
		resp, err := http.Get("http://" + addr + "/debug/queries")
		if err != nil {
			t.Fatalf("debug/queries: %v", err)
		}
		err = json.NewDecoder(resp.Body).Decode(&dump)
		resp.Body.Close()
		if err != nil {
			t.Fatalf("debug/queries not JSON: %v", err)
		}
		if dump.Len > 0 {
			break
		}
		if time.Now().After(waitRec) {
			t.Fatal("flight record never appeared")
		}
		time.Sleep(20 * time.Millisecond)
	}
	rec := dump.Records[0]
	if rec.Query == "" || rec.PlanKey == "" {
		t.Errorf("record missing keys: %+v", rec)
	}
	if len(rec.Ops) == 0 {
		t.Error("record has no per-operator rows")
	}
	for _, op := range rec.Ops {
		if op.QError < 1 {
			t.Errorf("op %s q-error %v < 1", op.Op, op.QError)
		}
	}
	var hasExecute bool
	for _, p := range rec.Phases {
		if p.Name == "execute" {
			hasExecute = true
		}
	}
	if !hasExecute {
		t.Errorf("record phases lack execute: %+v", rec.Phases)
	}
	if dump.SlowCount == 0 {
		t.Error("1ns slow threshold did not stamp the query slow")
	}

	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatalf("metrics scrape: %v", err)
	}
	fams, perr := obs.ParseExposition(resp.Body)
	resp.Body.Close()
	if perr != nil {
		t.Fatalf("strict exposition parse: %v", perr)
	}
	if fams["optimizer_plans_enumerated_total"] == nil {
		t.Error("metrics missing optimizer_plans_enumerated_total")
	}
	var qerrSeen bool
	for name, fam := range fams {
		if name == "executor_qerror_milli" && fam.Type == "histogram" {
			qerrSeen = true
		}
	}
	if !qerrSeen {
		t.Error("metrics missing executor_qerror_milli histogram")
	}

	if code := <-done; code != 0 {
		t.Fatalf("exit code = %d, stderr: %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "EXPLAIN ANALYZE") {
		t.Error("stats output suppressed by -metrics-addr")
	}
}
