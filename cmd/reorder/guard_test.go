package main

import (
	"strings"
	"testing"
)

const guardTestQuery = "select * from agg94, detail95 where agg94.supkey = detail95.supkey"

// TestRunTimeoutExitsThree: a run whose wall-clock budget is already
// exhausted must abort with the resource-governance exit code, not a
// generic failure.
func TestRunTimeoutExitsThree(t *testing.T) {
	code, _, stderr := runCapture(t, "-query", guardTestQuery, "-timeout", "1ns")
	if code != exitGuard {
		t.Fatalf("exit code = %d, want %d (stderr: %s)", code, exitGuard, stderr)
	}
	if !strings.Contains(stderr, "cancelled") {
		t.Errorf("stderr should name the cancellation: %s", stderr)
	}
}

// TestRunMaxRowsExitsThree: tripping the intermediate-row cap during
// -rows execution is a budget abort (exit 3), distinct from parse
// errors (2) and other runtime failures (1).
func TestRunMaxRowsExitsThree(t *testing.T) {
	code, _, stderr := runCapture(t, "-query", guardTestQuery, "-rows", "-max-rows", "10")
	if code != exitGuard {
		t.Fatalf("exit code = %d, want %d (stderr: %s)", code, exitGuard, stderr)
	}
	if !strings.Contains(stderr, "budget") {
		t.Errorf("stderr should name the budget trip: %s", stderr)
	}
}

// TestRunMaxExprsDegradesExitZero: an exprs cap does not fail the
// run — the optimizer degrades to a best-effort plan and says so.
func TestRunMaxExprsDegradesExitZero(t *testing.T) {
	code, stdout, stderr := runCapture(t, "-query", guardTestQuery, "-max-exprs", "1")
	if code != exitOK {
		t.Fatalf("exit code = %d, want %d (stderr: %s)", code, exitOK, stderr)
	}
	if !strings.Contains(stdout, "degraded:") {
		t.Errorf("stdout should carry the degradation tag:\n%s", stdout)
	}
}

// TestRunParseErrorExitsTwo: malformed SQL is a usage error.
func TestRunParseErrorExitsTwo(t *testing.T) {
	code, _, _ := runCapture(t, "-query", "select from where")
	if code != exitUsage {
		t.Fatalf("exit code = %d, want %d", code, exitUsage)
	}
}

// TestRunUnlimitedBudgetStillWorks: guard flags at their zero values
// must not change a normal run's outcome.
func TestRunUnlimitedBudgetStillWorks(t *testing.T) {
	code, stdout, stderr := runCapture(t, "-query", guardTestQuery, "-timeout", "0", "-max-exprs", "0", "-max-rows", "0")
	if code != exitOK {
		t.Fatalf("exit code = %d, want %d (stderr: %s)", code, exitOK, stderr)
	}
	if strings.Contains(stdout, "degraded:") {
		t.Errorf("unlimited run must not degrade:\n%s", stdout)
	}
}
