// Command reorder optimizes a SQL query against the built-in
// Example 1.1 supplier workload (or a chain database) and prints the
// hypergraph, the plan space and the chosen plan.
//
// Usage:
//
//	reorder -query "select ... from ..."          # optimize a query
//	reorder -demo supplier                        # run the Example 1.1 demo
//	reorder -demo q4                              # show Figure 1's hypergraph & trees
//
// The tool is deliberately self-contained: the workload is generated
// in memory, so every invocation is reproducible.
package main

import (
	"flag"
	"fmt"
	"os"

	reorder "repro"

	"repro/internal/datagen"
	"repro/internal/experiments"
	"repro/internal/optimizer"
	"repro/internal/plan"
	"repro/internal/sql"
	"repro/internal/stats"
)

func main() {
	query := flag.String("query", "", "SQL query to optimize against the supplier workload")
	dataDir := flag.String("data", "", "directory of .csv files to use as the database instead of the supplier workload")
	demo := flag.String("demo", "", "built-in demo: supplier | q4 | query2")
	baseline := flag.Bool("baseline", false, "also show the pre-paper baseline optimizer's choice")
	rows := flag.Bool("rows", false, "execute the chosen plan and print its result")
	dot := flag.Bool("dot", false, "emit the chosen plan as Graphviz DOT instead of text")
	flag.Parse()

	db := datagen.Supplier(datagen.DefaultSupplierConfig)
	if *dataDir != "" {
		loaded, err := reorder.LoadCSVDir(*dataDir)
		exitOn(err)
		db = loaded
	}

	switch {
	case *demo == "q4":
		out, err := experiments.Run("e2")
		exitOn(err)
		fmt.Println(out)
		out, err = experiments.Run("e3")
		exitOn(err)
		fmt.Println(out)
		return
	case *demo == "query2":
		out, err := experiments.Run("e9")
		exitOn(err)
		fmt.Println(out)
		return
	case *demo == "supplier":
		out, err := experiments.Run("e7")
		exitOn(err)
		fmt.Println(out)
		return
	case *query == "":
		fmt.Fprintln(os.Stderr, "provide -query or -demo (supplier | q4 | query2)")
		os.Exit(2)
	}

	node, err := sql.ParseAndLower(*query, db)
	exitOn(err)
	fmt.Println("query plan as written:")
	fmt.Println(plan.Indent(node))

	est := stats.NewEstimator(stats.FromDatabase(db))
	res, err := optimizer.New(est).Optimize(node, db)
	exitOn(err)
	fmt.Println(optimizer.Explain(res))

	if *baseline {
		base, err := optimizer.NewBaseline(est).Optimize(node, db)
		exitOn(err)
		fmt.Printf("baseline (no generalized selection): %d plans, best cost %.1f\n",
			base.Considered, base.Best.Cost)
	}
	if *dot {
		fmt.Println(plan.DOT(res.Best.Plan))
	}
	if *rows {
		out, err := res.Best.Plan.Eval(db)
		exitOn(err)
		out.SortForDisplay()
		fmt.Println(out)
	}
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
