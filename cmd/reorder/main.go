// Command reorder optimizes a SQL query against the built-in
// Example 1.1 supplier workload (or a chain database) and prints the
// hypergraph, the plan space and the chosen plan.
//
// Usage:
//
//	reorder -query "select ... from ..."          # optimize a query
//	reorder -demo supplier                        # run the Example 1.1 demo
//	reorder -demo supplier -stats                 # EXPLAIN ANALYZE the demo query
//	reorder -demo q4                              # show Figure 1's hypergraph & trees
//
// -stats executes the chosen plan through the instrumented executor
// and prints an EXPLAIN ANALYZE report: per-operator actual vs
// estimated rows and timings, optimizer phase wall times and rule
// firing counters. -trace prints the span tree of the run, and
// -statsjson dumps the whole report as machine-readable JSON.
// -workers spreads plan enumeration and costing over N goroutines
// (default GOMAXPROCS); the chosen plan is identical for any value.
//
// The tool is deliberately self-contained: the workload is generated
// in memory, so every invocation is reproducible.
package main

import (
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"runtime"

	reorder "repro"

	"repro/internal/datagen"
	"repro/internal/experiments"
	"repro/internal/optimizer"
	"repro/internal/plan"
	"repro/internal/sql"
	"repro/internal/stats"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// options are the parsed command-line flags; run threads them through
// the demo and query paths.
type options struct {
	query     string
	dataDir   string
	demo      string
	baseline  bool
	rows      bool
	dot       bool
	stats     bool
	trace     bool
	statsJSON bool
	workers   int
}

func (o options) wantAnalyze() bool { return o.stats || o.trace || o.statsJSON }

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("reorder", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var o options
	fs.StringVar(&o.query, "query", "", "SQL query to optimize against the supplier workload")
	fs.StringVar(&o.dataDir, "data", "", "directory of .csv files to use as the database instead of the supplier workload")
	fs.StringVar(&o.demo, "demo", "", "built-in demo: supplier | q4 | query2")
	fs.BoolVar(&o.baseline, "baseline", false, "also show the pre-paper baseline optimizer's choice")
	fs.BoolVar(&o.rows, "rows", false, "execute the chosen plan and print its result")
	fs.BoolVar(&o.dot, "dot", false, "emit the chosen plan as Graphviz DOT instead of text")
	fs.BoolVar(&o.stats, "stats", false, "execute instrumented and print an EXPLAIN ANALYZE report")
	fs.BoolVar(&o.trace, "trace", false, "print the optimizer/executor span trace")
	fs.BoolVar(&o.statsJSON, "statsjson", false, "dump the EXPLAIN ANALYZE report as JSON")
	fs.IntVar(&o.workers, "workers", runtime.GOMAXPROCS(0), "goroutines for plan enumeration and costing (1 = serial; the result is identical for any value)")
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: reorder -query <sql> | -demo <supplier|q4|query2> [flags]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	db := datagen.Supplier(datagen.DefaultSupplierConfig)
	if o.dataDir != "" {
		loaded, err := reorder.LoadCSVDir(o.dataDir)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		db = loaded
	}

	if o.demo != "" {
		return runDemo(o, db, stdout, stderr)
	}
	if o.query == "" {
		fmt.Fprintln(stderr, "reorder: provide -query or -demo (supplier | q4 | query2)")
		fs.Usage()
		return 2
	}

	node, err := sql.ParseAndLower(o.query, db)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	fmt.Fprintln(stdout, "query plan as written:")
	fmt.Fprintln(stdout, plan.Indent(node))

	est := stats.NewEstimator(stats.FromDatabase(db))
	opt := optimizer.New(est)
	opt.Opts.Workers = o.workers
	res, err := opt.Optimize(node, db)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	fmt.Fprintln(stdout, optimizer.Explain(res))

	if o.baseline {
		bopt := optimizer.NewBaseline(est)
		bopt.Opts.Workers = o.workers
		base, err := bopt.Optimize(node, db)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		fmt.Fprintf(stdout, "baseline (no generalized selection): %d plans, best cost %.1f\n",
			base.Considered, base.Best.Cost)
	}
	if o.dot {
		fmt.Fprintln(stdout, plan.DOT(res.Best.Plan))
	}
	if o.rows {
		out, err := res.Best.Plan.Eval(db)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		out.SortForDisplay()
		fmt.Fprintln(stdout, out)
	}
	if o.wantAnalyze() {
		return analyze(node, db, o, stdout, stderr)
	}
	return 0
}

// runDemo dispatches a named demo. Without analysis flags it prints
// the matching experiment write-up; with them it runs the demo's
// query through ExplainAnalyze on the demo's database.
func runDemo(o options, db reorder.Database, stdout, stderr io.Writer) int {
	var ids []string
	var node reorder.Node
	switch o.demo {
	case "q4":
		ids = []string{"e2", "e3"}
	case "query2":
		ids = []string{"e9"}
		node = experiments.Query2()
		db = query2DB()
	case "supplier":
		ids = []string{"e7"}
		node = datagen.SupplierQuery()
		if o.dataDir == "" {
			db = datagen.Supplier(datagen.DefaultSupplierConfig)
		}
	default:
		fmt.Fprintf(stderr, "reorder: unknown demo %q (have supplier, q4, query2)\n", o.demo)
		return 2
	}
	if o.wantAnalyze() {
		if node == nil {
			fmt.Fprintf(stderr, "reorder: demo %q has no executable database; -stats/-trace/-statsjson need supplier or query2\n", o.demo)
			return 2
		}
		return analyze(node, db, o, stdout, stderr)
	}
	for _, id := range ids {
		out, err := experiments.Run(id)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		fmt.Fprintln(stdout, out)
	}
	return 0
}

// query2DB is the skewed three-relation database experiment E9 uses
// for Query 2.
func query2DB() reorder.Database {
	rng := rand.New(rand.NewSource(9))
	return reorder.Database{
		"r1": datagen.Uniform(rng, "r1", datagen.UniformConfig{Rows: 2000, Domain: 40}),
		"r2": datagen.Uniform(rng, "r2", datagen.UniformConfig{Rows: 100, Domain: 40}),
		"r3": datagen.Uniform(rng, "r3", datagen.UniformConfig{Rows: 100, Domain: 40}),
	}
}

// analyze optimizes node, executes it instrumented and prints the
// requested views of the report.
func analyze(node reorder.Node, db reorder.Database, o options, stdout, stderr io.Writer) int {
	rep, err := reorder.ExplainAnalyzeWorkers(node, db, o.workers)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	if o.stats {
		fmt.Fprintln(stdout, rep.String())
	}
	if o.trace {
		fmt.Fprintln(stdout, rep.Trace())
	}
	if o.statsJSON {
		data, err := rep.JSON()
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		stdout.Write(data)
		fmt.Fprintln(stdout)
	}
	return 0
}
