// Command reorder optimizes a SQL query against the built-in
// Example 1.1 supplier workload (or a chain database) and prints the
// hypergraph, the plan space and the chosen plan.
//
// Usage:
//
//	reorder -query "select ... from ..."          # optimize a query
//	reorder -demo supplier                        # run the Example 1.1 demo
//	reorder -demo supplier -stats                 # EXPLAIN ANALYZE the demo query
//	reorder -demo q4                              # show Figure 1's hypergraph & trees
//
// -stats executes the chosen plan through the instrumented executor
// and prints an EXPLAIN ANALYZE report: per-operator actual vs
// estimated rows and timings, optimizer phase wall times and rule
// firing counters. -trace prints the span tree of the run, and
// -statsjson dumps the whole report as machine-readable JSON.
// -workers spreads plan enumeration and costing over N goroutines
// (default GOMAXPROCS); the chosen plan is identical for any value.
//
// The tool is deliberately self-contained: the workload is generated
// in memory, so every invocation is reproducible.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"os"
	"runtime"
	"time"

	reorder "repro"

	"repro/internal/datagen"
	"repro/internal/executor"
	"repro/internal/experiments"
	"repro/internal/guard"
	"repro/internal/optimizer"
	"repro/internal/plan"
	"repro/internal/sql"
	"repro/internal/stats"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// options are the parsed command-line flags; run threads them through
// the demo and query paths.
type options struct {
	query         string
	dataDir       string
	demo          string
	baseline      bool
	rows          bool
	dot           bool
	stats         bool
	trace         bool
	statsJSON     bool
	vec           bool
	feedback      bool
	replanQ       float64
	workers       int
	timeout       time.Duration
	maxExprs      int64
	maxRows       int64
	maxBytes      int64
	metricsAddr   string
	metricsLinger time.Duration
	slowQuery     time.Duration

	// obs is the run's observer, non-nil when -metrics-addr is set;
	// analyze folds its run into it.
	obs *reorder.Observer
}

// wantAnalyze: -metrics-addr implies an instrumented run — the
// aggregate registry and flight recorder are only populated by one.
func (o options) wantAnalyze() bool {
	return o.stats || o.trace || o.statsJSON || o.feedback || o.metricsAddr != ""
}

func (o options) limits() reorder.Limits {
	return reorder.Limits{MaxExprs: o.maxExprs, MaxRows: o.maxRows, MaxBytes: o.maxBytes}
}

// context returns the run's context, bounded by -timeout when set.
func (o options) context() (context.Context, context.CancelFunc) {
	if o.timeout > 0 {
		return context.WithTimeout(context.Background(), o.timeout)
	}
	return context.Background(), func() {}
}

// Exit codes: 0 success (including graceful degradation), 2 usage and
// parse/plan errors, 3 resource-governance aborts (timeout,
// cancellation, budget trips), 1 any other runtime failure.
const (
	exitOK      = 0
	exitRuntime = 1
	exitUsage   = 2
	exitGuard   = 3
)

// exitFor classifies an error into the command's exit code.
func exitFor(err error) int {
	if guard.IsCancelled(err) || guard.IsBudget(err) {
		return exitGuard
	}
	return exitRuntime
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("reorder", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var o options
	fs.StringVar(&o.query, "query", "", "SQL query to optimize against the supplier workload")
	fs.StringVar(&o.dataDir, "data", "", "directory of .csv files to use as the database instead of the supplier workload")
	fs.StringVar(&o.demo, "demo", "", "built-in demo: supplier | q4 | query2")
	fs.BoolVar(&o.baseline, "baseline", false, "also show the pre-paper baseline optimizer's choice")
	fs.BoolVar(&o.rows, "rows", false, "execute the chosen plan and print its result")
	fs.BoolVar(&o.dot, "dot", false, "emit the chosen plan as Graphviz DOT instead of text")
	fs.BoolVar(&o.stats, "stats", false, "execute instrumented and print an EXPLAIN ANALYZE report")
	fs.BoolVar(&o.trace, "trace", false, "print the optimizer/executor span trace")
	fs.BoolVar(&o.statsJSON, "statsjson", false, "dump the EXPLAIN ANALYZE report as JSON")
	fs.BoolVar(&o.vec, "vec", false, "execute on the columnar vectorized engine (joins spill to disk under -max-bytes pressure)")
	fs.BoolVar(&o.feedback, "feedback", false, "one-shot cardinality feedback: EXPLAIN ANALYZE, record actuals, and re-plan + re-execute when the worst subtree q-error reaches -replan-qerror")
	fs.Float64Var(&o.replanQ, "replan-qerror", 10, "q-error threshold for the -feedback re-plan")
	fs.IntVar(&o.workers, "workers", runtime.GOMAXPROCS(0), "goroutines for plan enumeration and costing (1 = serial; the result is identical for any value)")
	fs.DurationVar(&o.timeout, "timeout", 0, "wall-clock budget for the whole run (0 = unlimited); exceeding it exits 3")
	fs.Int64Var(&o.maxExprs, "max-exprs", 0, "cap on enumerated plan expressions (0 = unlimited); tripping it degrades to a best-effort plan, exit 0")
	fs.Int64Var(&o.maxRows, "max-rows", 0, "cap on intermediate rows during execution (0 = unlimited); tripping it exits 3")
	fs.Int64Var(&o.maxBytes, "max-bytes", 0, "cap on modeled intermediate bytes during execution (0 = unlimited); with -vec, oversized joins spill to disk instead of tripping")
	fs.StringVar(&o.metricsAddr, "metrics-addr", "", "serve /metrics (Prometheus text) and /debug/queries (flight JSON) on this address during the run; implies an instrumented run")
	fs.DurationVar(&o.metricsLinger, "metrics-linger", 0, "keep the metrics server up this long after the run finishes (0 = close immediately)")
	fs.DurationVar(&o.slowQuery, "slow-query", 100*time.Millisecond, "flight-recorder slow-query threshold (0 disables slow stamping)")
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: reorder -query <sql> | -demo <supplier|q4|query2> [flags]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return exitUsage
	}

	if o.metricsAddr != "" {
		o.obs = reorder.NewObserver(0)
		o.obs.Flight.SetSlowThreshold(o.slowQuery)
		srv, err := serveObs(o.metricsAddr, o.obs)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return exitRuntime
		}
		fmt.Fprintf(stderr, "metrics: serving on http://%s/metrics\n", srv.Addr())
		defer srv.CloseAfter(o.metricsLinger)
	}

	db := datagen.Supplier(datagen.DefaultSupplierConfig)
	if o.dataDir != "" {
		loaded, err := reorder.LoadCSVDir(o.dataDir)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return exitRuntime
		}
		db = loaded
	}

	if o.demo != "" {
		return runDemo(o, db, stdout, stderr)
	}
	if o.query == "" {
		fmt.Fprintln(stderr, "reorder: provide -query or -demo (supplier | q4 | query2)")
		fs.Usage()
		return exitUsage
	}

	node, err := sql.ParseAndLower(o.query, db)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return exitUsage
	}
	fmt.Fprintln(stdout, "query plan as written:")
	fmt.Fprintln(stdout, plan.Indent(node))

	ctx, cancel := o.context()
	defer cancel()
	est := stats.NewEstimator(stats.FromDatabase(db))
	opt := optimizer.New(est)
	opt.Opts.Workers = o.workers
	opt.Opts.Budget = guard.New(ctx, o.limits(), nil)
	res, err := opt.Optimize(node, db)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return exitFor(err)
	}
	fmt.Fprintln(stdout, optimizer.Explain(res))

	if o.baseline {
		bopt := optimizer.NewBaseline(est)
		bopt.Opts.Workers = o.workers
		bopt.Opts.Budget = guard.New(ctx, o.limits(), nil)
		base, err := bopt.Optimize(node, db)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return exitFor(err)
		}
		fmt.Fprintf(stdout, "baseline (no generalized selection): %d plans, best cost %.1f\n",
			base.Considered, base.Best.Cost)
	}
	if o.dot {
		fmt.Fprintln(stdout, plan.DOT(res.Best.Plan))
	}
	if o.rows {
		out, err := executor.RunGuarded(res.Best.Plan, db, guard.New(ctx, o.limits(), nil))
		if err != nil {
			fmt.Fprintln(stderr, err)
			return exitFor(err)
		}
		out.SortForDisplay()
		fmt.Fprintln(stdout, out)
	}
	if o.wantAnalyze() {
		return analyze(ctx, node, db, o, stdout, stderr)
	}
	return exitOK
}

// runDemo dispatches a named demo. Without analysis flags it prints
// the matching experiment write-up; with them it runs the demo's
// query through ExplainAnalyze on the demo's database.
func runDemo(o options, db reorder.Database, stdout, stderr io.Writer) int {
	var ids []string
	var node reorder.Node
	switch o.demo {
	case "q4":
		ids = []string{"e2", "e3"}
	case "query2":
		ids = []string{"e9"}
		node = experiments.Query2()
		db = query2DB()
	case "supplier":
		ids = []string{"e7"}
		node = datagen.SupplierQuery()
		if o.dataDir == "" {
			db = datagen.Supplier(datagen.DefaultSupplierConfig)
		}
	default:
		fmt.Fprintf(stderr, "reorder: unknown demo %q (have supplier, q4, query2)\n", o.demo)
		return exitUsage
	}
	if o.wantAnalyze() {
		if node == nil {
			fmt.Fprintf(stderr, "reorder: demo %q has no executable database; -stats/-trace/-statsjson need supplier or query2\n", o.demo)
			return exitUsage
		}
		ctx, cancel := o.context()
		defer cancel()
		return analyze(ctx, node, db, o, stdout, stderr)
	}
	for _, id := range ids {
		out, err := experiments.Run(id)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return exitRuntime
		}
		fmt.Fprintln(stdout, out)
	}
	return exitOK
}

// obsServer is the -metrics-addr HTTP server: the observer's handler
// on a plain listener, shut down (optionally after a linger window,
// so one-shot CLI runs can still be scraped) when the run ends.
type obsServer struct {
	ln  net.Listener
	srv *http.Server
}

// serveObs starts serving ob on addr (":0" picks a free port).
func serveObs(addr string, ob *reorder.Observer) (*obsServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("reorder: metrics listener: %w", err)
	}
	srv := &http.Server{Handler: ob.Handler()}
	go srv.Serve(ln)
	return &obsServer{ln: ln, srv: srv}, nil
}

// Addr returns the bound address (with the resolved port).
func (s *obsServer) Addr() string { return s.ln.Addr().String() }

// CloseAfter keeps serving for the linger window, then shuts down.
func (s *obsServer) CloseAfter(linger time.Duration) {
	if linger > 0 {
		time.Sleep(linger)
	}
	s.srv.Close()
}

// query2DB is the skewed three-relation database experiment E9 uses
// for Query 2.
func query2DB() reorder.Database {
	rng := rand.New(rand.NewSource(9))
	return reorder.Database{
		"r1": datagen.Uniform(rng, "r1", datagen.UniformConfig{Rows: 2000, Domain: 40}),
		"r2": datagen.Uniform(rng, "r2", datagen.UniformConfig{Rows: 100, Domain: 40}),
		"r3": datagen.Uniform(rng, "r3", datagen.UniformConfig{Rows: 100, Domain: 40}),
	}
}

// analyze optimizes node, executes it instrumented under the run's
// budget and prints the requested views of the report.
func analyze(ctx context.Context, node reorder.Node, db reorder.Database, o options, stdout, stderr io.Writer) int {
	var rep *reorder.AnalyzeReport
	var err error
	if o.feedback {
		rep, err = reorder.ExplainAnalyzeFeedback(ctx, node, db, o.workers, o.limits(), o.obs, o.replanQ)
	} else {
		rep, err = reorder.ExplainAnalyzeObservedEngine(ctx, node, db, o.workers, o.limits(), o.obs, o.vec)
	}
	if err != nil {
		fmt.Fprintln(stderr, err)
		return exitFor(err)
	}
	if o.stats || (o.feedback && !o.statsJSON) {
		fmt.Fprintln(stdout, rep.String())
	}
	if o.trace {
		fmt.Fprintln(stdout, rep.Trace())
	}
	if o.statsJSON {
		data, err := rep.JSON()
		if err != nil {
			fmt.Fprintln(stderr, err)
			return exitRuntime
		}
		stdout.Write(data)
		fmt.Fprintln(stdout)
	}
	return exitOK
}
