package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"
)

var addrRE = regexp.MustCompile(`serving on (\S+)`)

// lockedBuf serializes writes so the test can read stderr while run()
// is still serving.
type lockedBuf struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *lockedBuf) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *lockedBuf) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestServeSmoke boots the daemon on an ephemeral port against the
// demo database, serves a miss then a hit through real HTTP, scrapes
// /metrics, and shuts down gracefully.
func TestServeSmoke(t *testing.T) {
	var stdout, stderr lockedBuf
	stop := make(chan struct{})
	done := make(chan int, 1)
	go func() {
		done <- run([]string{"-addr", ":0", "-demo"}, &stdout, &stderr, stop)
	}()

	// The daemon prints its bound address to stderr.
	var base string
	deadline := time.Now().Add(10 * time.Second)
	for base == "" {
		if m := addrRE.FindStringSubmatch(stderr.String()); m != nil {
			base = "http://" + strings.Replace(m[1], "[::]", "127.0.0.1", 1)
		} else if time.Now().After(deadline) {
			t.Fatalf("daemon never announced its address; stderr: %q", stderr.String())
		} else {
			time.Sleep(5 * time.Millisecond)
		}
	}

	query := func(sql string) (int, map[string]any) {
		resp, err := http.Post(base+"/query", "application/json",
			strings.NewReader(`{"sql": "`+sql+`"}`))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var body map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, body
	}

	status, body := query("select r1.x from r1, r2 where r1.x = r2.x and r1.y = 3")
	if status != 200 || body["cache"] != "miss" {
		t.Fatalf("first query: status=%d body=%v", status, body)
	}
	status, body = query("select r1.x from r1, r2 where r1.x = r2.x and r1.y = 4")
	if status != 200 || body["cache"] != "hit" {
		t.Fatalf("second query: status=%d body=%v", status, body)
	}
	if status, body = query("not sql at all"); status != 400 {
		t.Fatalf("bad query: status=%d body=%v", status, body)
	}

	mresp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(mresp.Body)
	if err != nil {
		t.Fatal(err)
	}
	mresp.Body.Close()
	metrics := string(raw)
	for _, series := range []string{"plancache_hits_total", "plancache_misses_total", "serve_requests_total"} {
		if !strings.Contains(metrics, series) {
			t.Fatalf("/metrics lacks %s", series)
		}
	}

	close(stop)
	select {
	case code := <-done:
		if code != exitOK {
			t.Fatalf("exit code %d; stderr: %s", code, stderr.String())
		}
	case <-time.After(15 * time.Second):
		t.Fatal("daemon did not drain")
	}
	if !strings.Contains(stderr.String(), "draining") {
		t.Fatalf("graceful path not taken; stderr: %q", stderr.String())
	}
}

func TestUsageErrors(t *testing.T) {
	var out, errBuf bytes.Buffer
	if code := run(nil, &out, &errBuf, nil); code != exitUsage {
		t.Fatalf("no data source: exit %d, want %d", code, exitUsage)
	}
	if code := run([]string{"-demo", "-data", "x"}, &out, &errBuf, nil); code != exitUsage {
		t.Fatalf("conflicting sources: exit %d, want %d", code, exitUsage)
	}
	if code := run([]string{"-nosuchflag"}, &out, &errBuf, nil); code != exitUsage {
		t.Fatalf("bad flag: exit %d, want %d", code, exitUsage)
	}
}
