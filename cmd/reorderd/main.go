// Command reorderd is the long-running query service: HTTP/JSON in
// front of the reorder library, with a fingerprint-keyed plan cache,
// parameterized plans, and guard-based admission control.
//
//	reorderd -demo -addr :8080
//	reorderd -data ./csvdir -addr :0
//
// Endpoints: POST /query, GET /metrics, /debug/queries, /debug/cache.
// With -addr :0 the bound address is printed to stderr, which is how
// the smoke tests and benchserve discover the port.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro"
	"repro/internal/relation"
	"repro/internal/value"
)

const (
	exitOK      = 0
	exitRuntime = 1
	exitUsage   = 2
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr, nil))
}

// run is the testable entry point. stop, when non-nil, triggers the
// same graceful shutdown as SIGINT/SIGTERM.
func run(args []string, stdout, stderr io.Writer, stop <-chan struct{}) int {
	fs := flag.NewFlagSet("reorderd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr        = fs.String("addr", ":8080", "listen address (use :0 for an ephemeral port, printed to stderr)")
		data        = fs.String("data", "", "directory of *.csv base relations")
		demo        = fs.Bool("demo", false, "serve the built-in demo database (r1..r7, 50 rows each)")
		cacheBytes  = fs.Int64("cache-bytes", 64<<20, "plan cache byte budget")
		concurrency = fs.Int("concurrency", 8, "max requests optimizing/executing at once")
		queue       = fs.Int("queue", 32, "max requests waiting for a slot before shedding")
		timeout     = fs.Duration("timeout", 5*time.Second, "per-request deadline ceiling")
		maxRows     = fs.Int64("max-rows", 0, "per-request intermediate-row budget (0 = unlimited)")
		maxBytes    = fs.Int64("max-bytes", 0, "per-request intermediate-byte budget (0 = unlimited)")
		workers     = fs.Int("workers", 0, "optimizer worker count (0 = serial)")
		maxPlans    = fs.Int("max-plans", 0, "optimizer enumeration cap (0 = default)")
		flightCap   = fs.Int("flight", 0, "flight recorder capacity (0 = default)")
		drain       = fs.Duration("drain", 5*time.Second, "graceful shutdown drain window")
		feedback    = fs.Bool("feedback", false, "enable cardinality feedback: instrumented execution, drift-triggered re-planning, adaptive joins")
		replanQ     = fs.Float64("replan-qerror", 10, "max subtree q-error past which a run counts as drifted (with -feedback)")
		replanAfter = fs.Int("replan-after", 3, "consecutive drifted runs before re-planning (with -feedback)")
	)
	if err := fs.Parse(args); err != nil {
		return exitUsage
	}

	var db reorder.Database
	switch {
	case *demo && *data != "":
		fmt.Fprintln(stderr, "reorderd: -demo and -data are mutually exclusive")
		return exitUsage
	case *demo:
		db = demoDB()
	case *data != "":
		var err error
		db, err = reorder.LoadCSVDir(*data)
		if err != nil {
			fmt.Fprintf(stderr, "reorderd: %v\n", err)
			return exitRuntime
		}
	default:
		fmt.Fprintln(stderr, "reorderd: one of -demo or -data is required")
		return exitUsage
	}

	svc, err := reorder.NewService(reorder.ServiceConfig{
		DB:             db,
		CacheBytes:     *cacheBytes,
		MaxConcurrent:  *concurrency,
		MaxQueue:       *queue,
		DefaultTimeout: *timeout,
		DefaultLimits:  reorder.Limits{MaxRows: *maxRows, MaxBytes: *maxBytes},
		Workers:        *workers,
		MaxPlans:       *maxPlans,
		FlightCap:      *flightCap,
		Feedback:       *feedback,
		ReplanQError:   *replanQ,
		ReplanAfter:    *replanAfter,
	})
	if err != nil {
		fmt.Fprintf(stderr, "reorderd: %v\n", err)
		return exitRuntime
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(stderr, "reorderd: listen %s: %v\n", *addr, err)
		return exitRuntime
	}
	fmt.Fprintf(stderr, "reorderd: serving on %s (%d relations)\n", ln.Addr(), len(db))

	srv := &http.Server{Handler: svc.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	defer signal.Stop(sigc)

	select {
	case err := <-errc:
		fmt.Fprintf(stderr, "reorderd: %v\n", err)
		return exitRuntime
	case <-sigc:
	case <-stopChan(stop):
	}
	fmt.Fprintln(stderr, "reorderd: draining")
	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		fmt.Fprintf(stderr, "reorderd: shutdown: %v\n", err)
		return exitRuntime
	}
	return exitOK
}

// stopChan never fires for a nil stop channel.
func stopChan(stop <-chan struct{}) <-chan struct{} {
	if stop == nil {
		return make(chan struct{})
	}
	return stop
}

// demoDB builds the benchmark database served by -demo: seven
// relations r1..r7 of 50 rows with int columns x (0..8) and y (0..5) —
// the same shape cmd/benchopt measures the optimizer on, so the demo
// service exercises ms-scale optimizations against sub-ms executions.
func demoDB() reorder.Database {
	db := reorder.Database{}
	for i := 1; i <= 7; i++ {
		name := fmt.Sprintf("r%d", i)
		b := relation.NewBuilder(name, "x", "y")
		for j := 0; j < 50; j++ {
			b.Row(value.NewInt(int64(j%9)), value.NewInt(int64(j%6)))
		}
		db[name] = b.Relation()
	}
	return db
}
