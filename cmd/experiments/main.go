// Command experiments regenerates the paper's tables, figures and
// worked examples (the E1–E12 index of DESIGN.md).
//
// Usage:
//
//	experiments            # run everything
//	experiments -exp e7    # run one experiment
//	experiments -list      # list experiment ids
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/experiments"
)

func main() {
	exp := flag.String("exp", "", "experiment id to run (default: all)")
	list := flag.Bool("list", false, "list experiment ids")
	flag.Parse()

	if *list {
		fmt.Println(strings.Join(experiments.All, "\n"))
		return
	}
	ids := experiments.All
	if *exp != "" {
		ids = []string{*exp}
	}
	for _, id := range ids {
		out, err := experiments.Run(id)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Println(out)
		fmt.Println(strings.Repeat("=", 78))
	}
}
