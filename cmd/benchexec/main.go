// Command benchexec is the executor's benchmark harness, the
// execution-side sibling of cmd/benchopt: it measures the physical
// operators on canned workloads — the large equi-join (serial and
// grace-partitioned), hash aggregation and distinct projection —
// through testing.Benchmark, writes the numbers to
// BENCH_executor.json next to the embedded pre-change seed baselines,
// and exits non-zero if the partitioned join loses to the serial hash
// join on the large equi-join workload — the regression gate make
// bench enforces.
//
// Usage:
//
//	benchexec [-out BENCH_executor.json] [-tolerance 1.1] [-workload <regex>]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"regexp"
	"runtime"
	"testing"

	"repro/internal/batch"
	"repro/internal/guard"

	"repro/internal/algebra"
	"repro/internal/benchgate"
	"repro/internal/executor"
	"repro/internal/expr"
	"repro/internal/plan"
	"repro/internal/relation"
	"repro/internal/schema"
	"repro/internal/value"
)

// report is the BENCH_executor.json schema.
type report struct {
	benchgate.Header
	// SpeedupEquiJoin is seed EquiJoinLarge ms / current serial ms.
	SpeedupEquiJoin float64 `json:"speedupEquiJoin"`
	// SpeedupEquiJoinPartitioned is seed EquiJoinLarge ms / current
	// partitioned ms (workers = GOMAXPROCS).
	SpeedupEquiJoinPartitioned float64 `json:"speedupEquiJoinPartitioned"`
	// SpeedupHashAgg is seed HashAgg ms / current ms.
	SpeedupHashAgg float64 `json:"speedupHashAgg"`
	// SpeedupDistinct is seed DistinctProject ms / current ms.
	SpeedupDistinct float64 `json:"speedupDistinct"`
	// SpeedupVecEquiJoin is the tuple-engine VecEquiJoinLarge seed ms /
	// current columnar kernel ms — the vectorization win on the join.
	SpeedupVecEquiJoin float64 `json:"speedupVecEquiJoin,omitempty"`
	// SpeedupVecHashAgg is the tuple-engine VecHashAgg seed ms /
	// current columnar kernel ms — the vectorization win on grouping.
	SpeedupVecHashAgg float64 `json:"speedupVecHashAgg,omitempty"`
	// CounterDeltas maps workload name → the default-registry counter
	// movement (obs.Snapshot.Diff) across that workload's measurement.
	CounterDeltas map[string]map[string]int64 `json:"counterDeltas,omitempty"`
}

// Seed numbers measured at the pre-change commit on this container
// (GOMAXPROCS=1, Intel Xeon 2.10GHz); see BENCH_executor.json history.
var seeds = []benchgate.SeedBaseline{
	{Name: "EquiJoinLarge", MsPerOp: 51.2, BytesPerOp: 27468448, AllocsPerOp: 519968,
		Note: "40k x 40k inner equi-join, string hash keys rendered per tuple via fmt.Fprintf"},
	{Name: "HashAgg", MsPerOp: 87.6, BytesPerOp: 29500446, AllocsPerOp: 1385053,
		Note: "GROUP BY over 200k rows into 1000 groups (count(*), sum), string group keys"},
	{Name: "DistinctProject", MsPerOp: 136.2, BytesPerOp: 53277004, AllocsPerOp: 1796547,
		Note: "distinct projection of 200k rows onto 55k distinct pairs, string tuple keys"},
	// Tuple-engine numbers at the pre-vectorization commit — the
	// baselines the vectorized kernels gate >=3x against. Engine is
	// recorded so these are never compared to tuple-engine candidates.
	{Name: "VecEquiJoinLarge", Engine: "tuple", MsPerOp: 23.83, BytesPerOp: 20849023, AllocsPerOp: 80246,
		Note: "tuple-engine serial hash join on the 40k x 40k workload; vectorized kernel must be >=3x faster"},
	{Name: "VecHashAgg", Engine: "tuple", MsPerOp: 37.25, BytesPerOp: 7189898, AllocsPerOp: 207052,
		Note: "tuple-engine GroupProject on the 200k-row workload; vectorized kernel must be >=3x faster"},
}

func joinInputs(n int) (*relation.Relation, *relation.Relation) {
	b1 := relation.NewBuilder("l", "x", "y")
	b2 := relation.NewBuilder("r", "x", "y")
	for i := 0; i < n; i++ {
		b1.Row(value.NewInt(int64(i)), value.NewInt(int64(i%97)))
		b2.Row(value.NewInt(int64(i)), value.NewInt(int64(i%89)))
	}
	return b1.Relation(), b2.Relation()
}

func aggInput() *relation.Relation {
	b := relation.NewBuilder("t", "x", "y")
	for i := 0; i < 200000; i++ {
		b.Row(value.NewInt(int64(i%1000)), value.NewInt(int64(i%37)))
	}
	return b.Relation()
}

func distinctInput() *relation.Relation {
	b := relation.NewBuilder("t", "x", "y")
	for i := 0; i < 200000; i++ {
		b.Row(value.NewInt(int64(i%5000)), value.NewInt(int64(i%11)))
	}
	return b.Relation()
}

func main() {
	out := flag.String("out", "BENCH_executor.json", "where to write the JSON report")
	tolerance := flag.Float64("tolerance", 1.10, "max allowed partitioned/serial time ratio on the equi-join before failing")
	vecTolerance := flag.Float64("vec-tolerance", 1.0/3.0, "max allowed vectorized/tuple time ratio (default: vectorized must be >=3x faster)")
	workload := flag.String("workload", "", "only measure workloads whose name matches this regexp; gates on skipped workloads are skipped")
	flag.Parse()
	filter, err := regexp.Compile(*workload)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchexec: bad -workload:", err)
		os.Exit(2)
	}

	fmt.Printf("benchexec: GOMAXPROCS=%d %s\n", runtime.GOMAXPROCS(0), runtime.Version())
	var results []benchgate.Result
	deltas := map[string]map[string]int64{}
	// measure runs one workload unless -workload filters it out; a
	// skipped workload yields a zero Result, which disables any gate
	// and speedup figure referencing it.
	measure := func(name, engine string, f func(b *testing.B)) benchgate.Result {
		if *workload != "" && !filter.MatchString(name) {
			return benchgate.Result{}
		}
		var res benchgate.Result
		if d := benchgate.Deltas(func() { res = benchgate.RunEngine(name, engine, &results, f) }); d != nil {
			deltas[name] = d
		}
		return res
	}
	// speedup is seed-ms / candidate-ms, or 0 when the workload was
	// filtered out.
	speedup := func(seedMs float64, r benchgate.Result) float64 {
		if r.Iterations == 0 {
			return 0
		}
		return seedMs / r.MsPerOp
	}

	l, r := joinInputs(40000)
	joinPred := expr.EqCols("l", "x", "r", "x")
	serialJoin := measure("EquiJoinLarge/serial", "tuple", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			out, err := executor.JoinExec(plan.InnerJoin, joinPred, l, r)
			if err != nil {
				b.Fatal(err)
			}
			if out.Len() != 40000 {
				b.Fatal("bad join")
			}
		}
	})
	partJoin := measure("EquiJoinLarge/partitioned", "tuple", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			out, err := executor.JoinExecParallel(plan.InnerJoin, joinPred, l, r, 0)
			if err != nil {
				b.Fatal(err)
			}
			if out.Len() != 40000 {
				b.Fatal("bad join")
			}
		}
	})

	aggRel := aggInput()
	aggKeys := []schema.Attribute{schema.Attr("t", "x")}
	aggs := []algebra.Aggregate{
		{Func: algebra.CountStar, Out: schema.Attr("q", "n")},
		{Func: algebra.Sum, Arg: expr.Column("t", "y"), Out: schema.Attr("q", "s")},
	}
	hashAgg := measure("HashAgg", "tuple", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if out := algebra.GroupProject(aggKeys, aggs, aggRel); out.Len() != 1000 {
				b.Fatal("bad agg")
			}
		}
	})

	distRel := distinctInput()
	distAttrs := []schema.Attribute{schema.Attr("t", "x"), schema.Attr("t", "y")}
	distinct := measure("DistinctProject", "tuple", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if out := distRel.Project(distAttrs, true); out.Len() != 55000 {
				b.Fatal("bad distinct")
			}
		}
	})

	// Vectorized kernels: data is shaped columnar once (as a columnar
	// engine holds it between operators) and the kernel runs per
	// iteration. The seeds pin the tuple engine at the pre-change
	// commit; the >=3x gates below divide against them.
	lCol, rCol := batch.FromRelation(l), batch.FromRelation(r)
	vecJoin := measure("VecEquiJoinLarge", "vector", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			out, err := executor.JoinExecVec(plan.InnerJoin, joinPred, lCol, rCol, nil, executor.VecOptions{})
			if err != nil {
				b.Fatal(err)
			}
			if out.N != 40000 {
				b.Fatal("bad join")
			}
		}
	})
	aggCol := batch.FromRelation(aggRel)
	vecAgg := measure("VecHashAgg", "vector", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			out, err := executor.GroupByExecVec(aggKeys, aggs, aggCol, nil)
			if err != nil {
				b.Fatal(err)
			}
			if out.N != 1000 {
				b.Fatal("bad agg")
			}
		}
	})

	// SpillJoin: the out-of-core contract measured. The 9 MB byte
	// budget holds the join's modeled output (40k rows x 6 cols x 32 B
	// ~= 7.7 MB) plus any single spilled partition pair, but not the
	// in-memory build side (~3.8 MB resident on top of the output):
	// the hash join trips while the grace join partitions both sides
	// to disk and completes. The measurement is the end-to-end spilled
	// join, temp files included.
	sl, sr := joinInputs(40000)
	spillLimits := guard.Limits{MaxBytes: 9 << 20}
	if _, err := executor.RunGuarded(
		plan.NewJoin(plan.InnerJoin, joinPred, plan.NewScan("l"), plan.NewScan("r")),
		plan.Database{"l": sl, "r": sr},
		guard.New(context.Background(), spillLimits, nil)); !guard.IsBudget(err) {
		fmt.Fprintln(os.Stderr, "benchexec: in-memory join did not trip the SpillJoin budget; err =", err)
		os.Exit(1)
	}
	measure("SpillJoin", "spill", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			bud := guard.New(context.Background(), spillLimits, nil)
			out, err := executor.JoinExecSpill(plan.InnerJoin, joinPred, sl, sr, bud, executor.SpillOptions{})
			if err != nil {
				b.Fatal(err)
			}
			if out.Len() != 40000 {
				b.Fatal("bad spilled join")
			}
		}
	})

	rep := report{
		Header:                     benchgate.NewHeader(seeds, results),
		SpeedupEquiJoin:            speedup(seeds[0].MsPerOp, serialJoin),
		SpeedupEquiJoinPartitioned: speedup(seeds[0].MsPerOp, partJoin),
		SpeedupHashAgg:             speedup(seeds[1].MsPerOp, hashAgg),
		SpeedupDistinct:            speedup(seeds[2].MsPerOp, distinct),
		SpeedupVecEquiJoin:         speedup(seeds[3].MsPerOp, vecJoin),
		SpeedupVecHashAgg:          speedup(seeds[4].MsPerOp, vecAgg),
		CounterDeltas:              deltas,
	}
	if err := benchgate.WriteJSON(*out, rep); err != nil {
		fmt.Fprintln(os.Stderr, "benchexec:", err)
		os.Exit(1)
	}
	fmt.Printf("speedups vs seed: equi-join %.2fx serial, %.2fx partitioned; hash-agg %.2fx; distinct %.2fx\n",
		rep.SpeedupEquiJoin, rep.SpeedupEquiJoinPartitioned, rep.SpeedupHashAgg, rep.SpeedupDistinct)
	if rep.SpeedupVecEquiJoin > 0 || rep.SpeedupVecHashAgg > 0 {
		fmt.Printf("vectorized vs tuple seed: equi-join %.2fx, hash-agg %.2fx\n",
			rep.SpeedupVecEquiJoin, rep.SpeedupVecHashAgg)
	}
	fmt.Println("wrote", *out)

	// Regression gate: the partitioned join must not lose to the serial
	// hash join on the large equi-join (ratio 1.0 ± tolerance; on a
	// 1-CPU host the partitioned path resolves to the serial join, so
	// the gate is exact there and meaningful on multi-core).
	// The vectorized gates compare against the committed tuple-engine
	// seeds (same workload, pre-change commit), not against this run's
	// tuple numbers, so a uniformly slow host cannot mask a kernel
	// regression. Baseline iterations are pinned to 1 so -workload
	// filtering of the candidate (not the seed) drives gate skipping.
	vecJoinSeed := benchgate.Result{Name: seeds[3].Name, Engine: seeds[3].Engine, MsPerOp: seeds[3].MsPerOp, Iterations: 1}
	vecAggSeed := benchgate.Result{Name: seeds[4].Name, Engine: seeds[4].Engine, MsPerOp: seeds[4].MsPerOp, Iterations: 1}
	err = benchgate.Check(
		benchgate.Gate{Label: "partitioned EquiJoinLarge vs serial", Candidate: partJoin, Baseline: serialJoin, Tolerance: *tolerance},
		benchgate.Gate{Label: "VecEquiJoinLarge vs tuple seed (>=3x)", Candidate: vecJoin, Baseline: vecJoinSeed, Tolerance: *vecTolerance},
		benchgate.Gate{Label: "VecHashAgg vs tuple seed (>=3x)", Candidate: vecAgg, Baseline: vecAggSeed, Tolerance: *vecTolerance},
	)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchexec:", err)
		os.Exit(1)
	}
}
