// Command benchexec is the executor's benchmark harness, the
// execution-side sibling of cmd/benchopt: it measures the physical
// operators on canned workloads — the large equi-join (serial and
// grace-partitioned), hash aggregation and distinct projection —
// through testing.Benchmark, writes the numbers to
// BENCH_executor.json next to the embedded pre-change seed baselines,
// and exits non-zero if the partitioned join loses to the serial hash
// join on the large equi-join workload — the regression gate make
// bench enforces.
//
// Usage:
//
//	benchexec [-out BENCH_executor.json] [-tolerance 1.1]
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"

	"repro/internal/algebra"
	"repro/internal/benchgate"
	"repro/internal/executor"
	"repro/internal/expr"
	"repro/internal/plan"
	"repro/internal/relation"
	"repro/internal/schema"
	"repro/internal/value"
)

// report is the BENCH_executor.json schema.
type report struct {
	benchgate.Header
	// SpeedupEquiJoin is seed EquiJoinLarge ms / current serial ms.
	SpeedupEquiJoin float64 `json:"speedupEquiJoin"`
	// SpeedupEquiJoinPartitioned is seed EquiJoinLarge ms / current
	// partitioned ms (workers = GOMAXPROCS).
	SpeedupEquiJoinPartitioned float64 `json:"speedupEquiJoinPartitioned"`
	// SpeedupHashAgg is seed HashAgg ms / current ms.
	SpeedupHashAgg float64 `json:"speedupHashAgg"`
	// SpeedupDistinct is seed DistinctProject ms / current ms.
	SpeedupDistinct float64 `json:"speedupDistinct"`
	// CounterDeltas maps workload name → the default-registry counter
	// movement (obs.Snapshot.Diff) across that workload's measurement.
	CounterDeltas map[string]map[string]int64 `json:"counterDeltas,omitempty"`
}

// Seed numbers measured at the pre-change commit on this container
// (GOMAXPROCS=1, Intel Xeon 2.10GHz); see BENCH_executor.json history.
var seeds = []benchgate.SeedBaseline{
	{Name: "EquiJoinLarge", MsPerOp: 51.2, BytesPerOp: 27468448, AllocsPerOp: 519968,
		Note: "40k x 40k inner equi-join, string hash keys rendered per tuple via fmt.Fprintf"},
	{Name: "HashAgg", MsPerOp: 87.6, BytesPerOp: 29500446, AllocsPerOp: 1385053,
		Note: "GROUP BY over 200k rows into 1000 groups (count(*), sum), string group keys"},
	{Name: "DistinctProject", MsPerOp: 136.2, BytesPerOp: 53277004, AllocsPerOp: 1796547,
		Note: "distinct projection of 200k rows onto 55k distinct pairs, string tuple keys"},
}

func joinInputs(n int) (*relation.Relation, *relation.Relation) {
	b1 := relation.NewBuilder("l", "x", "y")
	b2 := relation.NewBuilder("r", "x", "y")
	for i := 0; i < n; i++ {
		b1.Row(value.NewInt(int64(i)), value.NewInt(int64(i%97)))
		b2.Row(value.NewInt(int64(i)), value.NewInt(int64(i%89)))
	}
	return b1.Relation(), b2.Relation()
}

func aggInput() *relation.Relation {
	b := relation.NewBuilder("t", "x", "y")
	for i := 0; i < 200000; i++ {
		b.Row(value.NewInt(int64(i%1000)), value.NewInt(int64(i%37)))
	}
	return b.Relation()
}

func distinctInput() *relation.Relation {
	b := relation.NewBuilder("t", "x", "y")
	for i := 0; i < 200000; i++ {
		b.Row(value.NewInt(int64(i%5000)), value.NewInt(int64(i%11)))
	}
	return b.Relation()
}

func main() {
	out := flag.String("out", "BENCH_executor.json", "where to write the JSON report")
	tolerance := flag.Float64("tolerance", 1.10, "max allowed partitioned/serial time ratio on the equi-join before failing")
	flag.Parse()

	fmt.Printf("benchexec: GOMAXPROCS=%d %s\n", runtime.GOMAXPROCS(0), runtime.Version())
	var results []benchgate.Result
	deltas := map[string]map[string]int64{}
	measure := func(name string, f func(b *testing.B)) benchgate.Result {
		var res benchgate.Result
		if d := benchgate.Deltas(func() { res = benchgate.Run(name, &results, f) }); d != nil {
			deltas[name] = d
		}
		return res
	}

	l, r := joinInputs(40000)
	joinPred := expr.EqCols("l", "x", "r", "x")
	serialJoin := measure("EquiJoinLarge/serial", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			out, err := executor.JoinExec(plan.InnerJoin, joinPred, l, r)
			if err != nil {
				b.Fatal(err)
			}
			if out.Len() != 40000 {
				b.Fatal("bad join")
			}
		}
	})
	partJoin := measure("EquiJoinLarge/partitioned", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			out, err := executor.JoinExecParallel(plan.InnerJoin, joinPred, l, r, 0)
			if err != nil {
				b.Fatal(err)
			}
			if out.Len() != 40000 {
				b.Fatal("bad join")
			}
		}
	})

	aggRel := aggInput()
	aggKeys := []schema.Attribute{schema.Attr("t", "x")}
	aggs := []algebra.Aggregate{
		{Func: algebra.CountStar, Out: schema.Attr("q", "n")},
		{Func: algebra.Sum, Arg: expr.Column("t", "y"), Out: schema.Attr("q", "s")},
	}
	hashAgg := measure("HashAgg", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if out := algebra.GroupProject(aggKeys, aggs, aggRel); out.Len() != 1000 {
				b.Fatal("bad agg")
			}
		}
	})

	distRel := distinctInput()
	distAttrs := []schema.Attribute{schema.Attr("t", "x"), schema.Attr("t", "y")}
	distinct := measure("DistinctProject", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if out := distRel.Project(distAttrs, true); out.Len() != 55000 {
				b.Fatal("bad distinct")
			}
		}
	})

	rep := report{
		Header:                     benchgate.NewHeader(seeds, results),
		SpeedupEquiJoin:            seeds[0].MsPerOp / serialJoin.MsPerOp,
		SpeedupEquiJoinPartitioned: seeds[0].MsPerOp / partJoin.MsPerOp,
		SpeedupHashAgg:             seeds[1].MsPerOp / hashAgg.MsPerOp,
		SpeedupDistinct:            seeds[2].MsPerOp / distinct.MsPerOp,
		CounterDeltas:              deltas,
	}
	if err := benchgate.WriteJSON(*out, rep); err != nil {
		fmt.Fprintln(os.Stderr, "benchexec:", err)
		os.Exit(1)
	}
	fmt.Printf("speedups vs seed: equi-join %.2fx serial, %.2fx partitioned; hash-agg %.2fx; distinct %.2fx\n",
		rep.SpeedupEquiJoin, rep.SpeedupEquiJoinPartitioned, rep.SpeedupHashAgg, rep.SpeedupDistinct)
	fmt.Println("wrote", *out)

	// Regression gate: the partitioned join must not lose to the serial
	// hash join on the large equi-join (ratio 1.0 ± tolerance; on a
	// 1-CPU host the partitioned path resolves to the serial join, so
	// the gate is exact there and meaningful on multi-core).
	err := benchgate.Check(
		benchgate.Gate{Label: "partitioned EquiJoinLarge vs serial", Candidate: partJoin, Baseline: serialJoin, Tolerance: *tolerance},
	)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchexec:", err)
		os.Exit(1)
	}
}
