// Command benchopt is the optimizer's benchmark harness: it runs the
// saturation, memo-exploration and costing workloads through
// testing.Benchmark, compares the serial engine against the parallel
// one, the memo engine against saturation, and the memoized cost
// session against cold estimation, writes the numbers to
// BENCH_optimizer.json, and exits non-zero if the parallel engine is
// slower than the serial one — or the memo engine slower than
// saturation — on the canned workloads; these are the regression
// gates make bench enforces.
//
// Usage:
//
//	benchopt [-out BENCH_optimizer.json] [-tolerance 1.1]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"

	"repro/internal/benchgate"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/guard"
	"repro/internal/obs"
	"repro/internal/optimizer"
	"repro/internal/plan"
	"repro/internal/relation"
	"repro/internal/stats"
	"repro/internal/value"
)

// report is the BENCH_optimizer.json schema.
type report struct {
	benchgate.Header
	// SpeedupQ5Serial is seed SaturateQ5 ms / current serial ms.
	SpeedupQ5Serial float64 `json:"speedupQ5Serial"`
	// SpeedupQ5Parallel is seed SaturateQ5 ms / current parallel ms
	// (workers = GOMAXPROCS).
	SpeedupQ5Parallel float64 `json:"speedupQ5Parallel"`
	// SpeedupCostMemo is cold estimator ms / memoized session ms on
	// the Q5 closure costing pass.
	SpeedupCostMemo float64 `json:"speedupCostMemo"`
	// SpeedupMemoQ5 is the full-optimization saturation ms / memo
	// engine ms on Q5 (enumerate + cost + pick best, end to end).
	SpeedupMemoQ5 float64 `json:"speedupMemoQ5"`
	// SpeedupMemoChain7 is the same ratio on the 7-relation chain,
	// where both engines hit the 10000 cap.
	SpeedupMemoChain7 float64 `json:"speedupMemoChain7"`
	// MemoPrunedQ5 is the memo.pruned counter from one memo-engine Q5
	// optimization: extraction candidates discarded by branch-and-bound
	// before full costing.
	MemoPrunedQ5 int64 `json:"memoPrunedQ5"`
	// GuardOverheadQ5 and GuardOverheadChain7 are the guarded /
	// unguarded time ratios on the memo-engine optimizations: the cost
	// of threading an untripped budget (cancellation + expression
	// accounting at every wave boundary) through the whole run.
	GuardOverheadQ5     float64 `json:"guardOverheadQ5"`
	GuardOverheadChain7 float64 `json:"guardOverheadChain7"`
}

// Seed numbers measured at the pre-change commit on this container
// (GOMAXPROCS=1, Intel Xeon 2.10GHz); see BENCH_optimizer.json
// history.
var seeds = []benchgate.SeedBaseline{
	{Name: "SaturateQ5", MsPerOp: 204.7, BytesPerOp: 57400000, AllocsPerOp: 1485045,
		Note: "serial saturation of Q5 (closure 2752 plans, cap 10000), pre-fingerprint"},
	{Name: "SaturateChain7", MsPerOp: 609.7, BytesPerOp: 172300000, AllocsPerOp: 4191999,
		Note: "serial saturation of the 7-relation chain, hits the 10000-plan cap"},
	{Name: "CostClosure", MsPerOp: 11.79, BytesPerOp: 1600000, AllocsPerOp: 96672,
		Note: "PlanCost+Rows over all 2752 Q5 closure members, no memo"},
}

func benchDB() plan.Database {
	db := plan.Database{}
	for i := 1; i <= 7; i++ {
		name := fmt.Sprintf("r%d", i)
		b := relation.NewBuilder(name, "x", "y")
		for j := 0; j < 50; j++ {
			b.Row(value.NewInt(int64(j%9)), value.NewInt(int64(j%6)))
		}
		db[name] = b.Relation()
	}
	return db
}

func saturateBench(q plan.Node, workers int) func(b *testing.B) {
	return func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			core.Saturate(q, core.SaturateOptions{MaxPlans: 10000, Workers: workers})
		}
	}
}

// optimizeBench measures a full optimization — enumerate, cost, pick
// best — with the given engine, a fresh registry per iteration.
func optimizeBench(q plan.Node, db plan.Database, est *stats.Estimator, mode optimizer.MemoMode) func(b *testing.B) {
	return func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			o := optimizer.New(est)
			o.Opts.UseMemo = mode
			o.Opts.MaxPlans = 10000
			o.Opts.Obs = obs.NewRegistry()
			if _, err := o.Optimize(q, db); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// optimizeBenchGuarded is optimizeBench with a budget that never
// trips threaded through the run — it measures pure guard overhead.
func optimizeBenchGuarded(q plan.Node, db plan.Database, est *stats.Estimator, mode optimizer.MemoMode) func(b *testing.B) {
	return func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			o := optimizer.New(est)
			o.Opts.UseMemo = mode
			o.Opts.MaxPlans = 10000
			o.Opts.Obs = obs.NewRegistry()
			o.Opts.Budget = guard.New(context.Background(), guard.Limits{MaxExprs: 1 << 40}, nil)
			if _, err := o.Optimize(q, db); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func main() {
	out := flag.String("out", "BENCH_optimizer.json", "where to write the JSON report")
	tolerance := flag.Float64("tolerance", 1.10, "max allowed candidate/baseline time ratio before failing")
	guardTolerance := flag.Float64("guard-tolerance", 1.02, "max allowed guarded/unguarded time ratio (guard overhead budget)")
	flag.Parse()

	fmt.Printf("benchopt: GOMAXPROCS=%d %s\n", runtime.GOMAXPROCS(0), runtime.Version())
	var results []benchgate.Result

	q5 := experiments.Q5()
	chain := experiments.ChainQuery(7)
	serialQ5 := benchgate.Run("SaturateQ5/serial", &results, saturateBench(q5, 1))
	parQ5 := benchgate.Run("SaturateQ5/parallel", &results, saturateBench(q5, -1))
	benchgate.Run("SaturateChain7/serial", &results, saturateBench(chain, 1))
	benchgate.Run("SaturateChain7/parallel", &results, saturateBench(chain, -1))

	db := benchDB()
	est := stats.NewEstimator(stats.FromDatabase(db))
	satOptQ5 := benchgate.Run("OptimizeQ5/saturate", &results, optimizeBench(q5, db, est, optimizer.MemoOff))
	satOptChain := benchgate.Run("OptimizeChain7/saturate", &results, optimizeBench(chain, db, est, optimizer.MemoOff))
	// The guard-overhead gates compare at a few percent tolerance, so
	// both sides are measured min-of-3 — a single testing.Benchmark
	// sample jitters more than the overhead being gated.
	memOptQ5 := benchgate.RunBest("OptimizeQ5/memo", &results, 3, optimizeBench(q5, db, est, optimizer.MemoAuto))
	memOptChain := benchgate.RunBest("OptimizeChain7/memo", &results, 3, optimizeBench(chain, db, est, optimizer.MemoAuto))
	memOptQ5G := benchgate.RunBest("OptimizeQ5/memo-guarded", &results, 3, optimizeBenchGuarded(q5, db, est, optimizer.MemoAuto))
	memOptChainG := benchgate.RunBest("OptimizeChain7/memo-guarded", &results, 3, optimizeBenchGuarded(chain, db, est, optimizer.MemoAuto))

	// One instrumented memo run for the branch-and-bound evidence.
	reg := obs.NewRegistry()
	o := optimizer.New(est)
	o.Opts.MaxPlans = 10000
	o.Opts.Obs = reg
	if _, err := o.Optimize(q5, db); err != nil {
		fmt.Fprintln(os.Stderr, "benchopt:", err)
		os.Exit(1)
	}
	memoPruned := reg.Snapshot().Counters["memo.pruned"]
	fmt.Printf("memo.pruned on Q5: %d extraction candidates cut by branch-and-bound\n", memoPruned)

	closure := core.Saturate(q5, core.SaturateOptions{MaxPlans: 10000})
	costCold := benchgate.Run("CostClosure/estimator", &results, func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, p := range closure {
				if _, err := est.PlanCost(p); err != nil {
					b.Fatal(err)
				}
				if _, err := est.Rows(p); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	costMemo := benchgate.Run("CostClosure/session", &results, func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sess := est.NewSession(nil)
			for _, p := range closure {
				if _, err := sess.PlanCost(p); err != nil {
					b.Fatal(err)
				}
				if _, err := sess.Rows(p); err != nil {
					b.Fatal(err)
				}
			}
		}
	})

	rep := report{
		Header:            benchgate.NewHeader(seeds, results),
		SpeedupQ5Serial:   seeds[0].MsPerOp / serialQ5.MsPerOp,
		SpeedupQ5Parallel: seeds[0].MsPerOp / parQ5.MsPerOp,
		SpeedupCostMemo:   costCold.MsPerOp / costMemo.MsPerOp,
		SpeedupMemoQ5:     satOptQ5.MsPerOp / memOptQ5.MsPerOp,
		SpeedupMemoChain7: satOptChain.MsPerOp / memOptChain.MsPerOp,
		MemoPrunedQ5:      memoPruned,

		GuardOverheadQ5:     memOptQ5G.MsPerOp / memOptQ5.MsPerOp,
		GuardOverheadChain7: memOptChainG.MsPerOp / memOptChain.MsPerOp,
	}
	if err := benchgate.WriteJSON(*out, rep); err != nil {
		fmt.Fprintln(os.Stderr, "benchopt:", err)
		os.Exit(1)
	}
	fmt.Printf("speedups vs seed: Q5 serial %.2fx, Q5 parallel %.2fx; cost memo %.2fx vs cold\n",
		rep.SpeedupQ5Serial, rep.SpeedupQ5Parallel, rep.SpeedupCostMemo)
	fmt.Printf("memo engine vs saturation: Q5 %.2fx, chain7 %.2fx\n",
		rep.SpeedupMemoQ5, rep.SpeedupMemoChain7)
	fmt.Printf("guard overhead (guarded/unguarded): Q5 %.4f, chain7 %.4f\n",
		rep.GuardOverheadQ5, rep.GuardOverheadChain7)
	fmt.Println("wrote", *out)

	// Regression gates: the parallel engine must not lose to the serial
	// one, and the memo engine must not lose to saturation, on the
	// canned workloads (ratio 1.0 ± tolerance; on a 1-CPU host
	// Workers:GOMAXPROCS resolves to the serial path, so the parallel
	// gate is exact there and meaningful on multi-core).
	// The guard gates hold the overhead of an untripped budget — the
	// always-on production cost of resource governance — under the
	// guard tolerance (2% by default) on the memo workloads.
	err := benchgate.Check(
		benchgate.Gate{Label: "parallel SaturateQ5 vs serial", Candidate: parQ5, Baseline: serialQ5, Tolerance: *tolerance},
		benchgate.Gate{Label: "memo OptimizeQ5 vs saturation", Candidate: memOptQ5, Baseline: satOptQ5, Tolerance: *tolerance},
		benchgate.Gate{Label: "memo OptimizeChain7 vs saturation", Candidate: memOptChain, Baseline: satOptChain, Tolerance: *tolerance},
		benchgate.Gate{Label: "guarded OptimizeQ5 vs unguarded", Candidate: memOptQ5G, Baseline: memOptQ5, Tolerance: *guardTolerance},
		benchgate.Gate{Label: "guarded OptimizeChain7 vs unguarded", Candidate: memOptChainG, Baseline: memOptChain, Tolerance: *guardTolerance},
	)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchopt:", err)
		os.Exit(1)
	}
}
