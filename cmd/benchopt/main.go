// Command benchopt is the optimizer's benchmark harness: it runs the
// saturation, memo-exploration and costing workloads through
// testing.Benchmark, compares the serial engine against the parallel
// one, the memo engine against saturation, and the memoized cost
// session against cold estimation, writes the numbers to
// BENCH_optimizer.json, and exits non-zero if the parallel engine is
// slower than the serial one — or the memo engine slower than
// saturation — on the canned workloads; these are the regression
// gates make bench enforces.
//
// Usage:
//
//	benchopt [-out BENCH_optimizer.json] [-tolerance 1.1]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"regexp"
	"runtime"
	"testing"

	"repro/internal/benchgate"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/guard"
	"repro/internal/obs"
	"repro/internal/obs/flight"
	"repro/internal/optimizer"
	"repro/internal/plan"
	"repro/internal/relation"
	"repro/internal/stats"
	"repro/internal/value"
)

// report is the BENCH_optimizer.json schema.
type report struct {
	benchgate.Header
	// SpeedupQ5Serial is seed SaturateQ5 ms / current serial ms.
	SpeedupQ5Serial float64 `json:"speedupQ5Serial"`
	// SpeedupQ5Parallel is seed SaturateQ5 ms / current parallel ms
	// (workers = GOMAXPROCS).
	SpeedupQ5Parallel float64 `json:"speedupQ5Parallel"`
	// SpeedupCostMemo is cold estimator ms / memoized session ms on
	// the Q5 closure costing pass.
	SpeedupCostMemo float64 `json:"speedupCostMemo"`
	// SpeedupMemoQ5 is the full-optimization saturation ms / memo
	// engine ms on Q5 (enumerate + cost + pick best, end to end).
	SpeedupMemoQ5 float64 `json:"speedupMemoQ5"`
	// SpeedupMemoChain7 is the same ratio on the 7-relation chain,
	// where both engines hit the 10000 cap.
	SpeedupMemoChain7 float64 `json:"speedupMemoChain7"`
	// MemoPrunedQ5 is the memo.pruned counter from one memo-engine Q5
	// optimization: extraction candidates discarded by branch-and-bound
	// before full costing.
	MemoPrunedQ5 int64 `json:"memoPrunedQ5"`
	// GuardOverheadQ5 and GuardOverheadChain7 are the guarded /
	// unguarded time ratios on the memo-engine optimizations: the cost
	// of threading an untripped budget (cancellation + expression
	// accounting at every wave boundary) through the whole run.
	GuardOverheadQ5     float64 `json:"guardOverheadQ5"`
	GuardOverheadChain7 float64 `json:"guardOverheadChain7"`
	// ObsOverheadQ5 is the observed / plain time ratio on the memo-engine
	// Q5 optimization: the cost of metering against a private registry,
	// merging it into the process aggregate and depositing a flight
	// record — the full observability pipeline.
	ObsOverheadQ5 float64 `json:"obsOverheadQ5"`
	// CounterDeltas maps workload name → the default-registry counter
	// movement (obs.Snapshot.Diff) across that workload's measurement.
	CounterDeltas map[string]map[string]int64 `json:"counterDeltas,omitempty"`
}

// Seed numbers measured at the pre-change commit on this container
// (GOMAXPROCS=1, Intel Xeon 2.10GHz); see BENCH_optimizer.json
// history.
var seeds = []benchgate.SeedBaseline{
	{Name: "SaturateQ5", MsPerOp: 204.7, BytesPerOp: 57400000, AllocsPerOp: 1485045,
		Note: "serial saturation of Q5 (closure 2752 plans, cap 10000), pre-fingerprint"},
	{Name: "SaturateChain7", MsPerOp: 609.7, BytesPerOp: 172300000, AllocsPerOp: 4191999,
		Note: "serial saturation of the 7-relation chain, hits the 10000-plan cap"},
	{Name: "CostClosure", MsPerOp: 11.79, BytesPerOp: 1600000, AllocsPerOp: 96672,
		Note: "PlanCost+Rows over all 2752 Q5 closure members, no memo"},
}

func benchDB() plan.Database {
	db := plan.Database{}
	for i := 1; i <= 7; i++ {
		name := fmt.Sprintf("r%d", i)
		b := relation.NewBuilder(name, "x", "y")
		for j := 0; j < 50; j++ {
			b.Row(value.NewInt(int64(j%9)), value.NewInt(int64(j%6)))
		}
		db[name] = b.Relation()
	}
	return db
}

func saturateBench(q plan.Node, workers int) func(b *testing.B) {
	return func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			core.Saturate(q, core.SaturateOptions{MaxPlans: 10000, Workers: workers})
		}
	}
}

// optimizeBench measures a full optimization — enumerate, cost, pick
// best — with the given engine, metering against the default registry
// (so the workload's counter deltas land in the report).
func optimizeBench(q plan.Node, db plan.Database, est *stats.Estimator, mode optimizer.MemoMode) func(b *testing.B) {
	return func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			o := optimizer.New(est)
			o.Opts.UseMemo = mode
			o.Opts.MaxPlans = 10000
			if _, err := o.Optimize(q, db); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// optimizeBenchGuarded is optimizeBench with a budget that never
// trips threaded through the run — it measures pure guard overhead.
func optimizeBenchGuarded(q plan.Node, db plan.Database, est *stats.Estimator, mode optimizer.MemoMode) func(b *testing.B) {
	return func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			o := optimizer.New(est)
			o.Opts.UseMemo = mode
			o.Opts.MaxPlans = 10000
			o.Opts.Budget = guard.New(context.Background(), guard.Limits{MaxExprs: 1 << 40}, nil)
			if _, err := o.Optimize(q, db); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// optimizeBenchObserved is optimizeBench plus the full observability
// pipeline per iteration: meter against a private registry, merge it
// into the process aggregate, deposit a flight record. The gate holds
// this within the obs tolerance of the plain run — observability must
// stay within noise of the un-observed optimizer.
func optimizeBenchObserved(q plan.Node, db plan.Database, est *stats.Estimator, mode optimizer.MemoMode) func(b *testing.B) {
	rec := flight.New(0)
	return func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			o := optimizer.New(est)
			o.Opts.UseMemo = mode
			o.Opts.MaxPlans = 10000
			reg := obs.NewRegistry()
			o.Opts.Obs = reg
			res, err := o.Optimize(q, db)
			if err != nil {
				b.Fatal(err)
			}
			obs.Default().Merge(reg)
			rec.Add(flight.Record{
				Query:    plan.Key(q),
				PlanKey:  plan.Key(res.Best.Plan),
				Degraded: res.Degraded,
				Counters: reg.Snapshot().Counters,
			})
		}
	}
}

func main() {
	out := flag.String("out", "BENCH_optimizer.json", "where to write the JSON report")
	tolerance := flag.Float64("tolerance", 1.10, "max allowed candidate/baseline time ratio before failing")
	guardTolerance := flag.Float64("guard-tolerance", 1.02, "max allowed guarded/unguarded time ratio (guard overhead budget)")
	obsTolerance := flag.Float64("obs-tolerance", 1.02, "max allowed observed/plain time ratio (observability overhead budget)")
	workload := flag.String("workload", "", "only measure workloads whose name matches this regexp; gates and ratios on skipped workloads are skipped")
	flag.Parse()
	filter, err := regexp.Compile(*workload)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchopt: bad -workload:", err)
		os.Exit(2)
	}
	skip := func(name string) bool { return *workload != "" && !filter.MatchString(name) }

	fmt.Printf("benchopt: GOMAXPROCS=%d %s\n", runtime.GOMAXPROCS(0), runtime.Version())
	var results []benchgate.Result
	deltas := map[string]map[string]int64{}
	measure := func(name string, f func(b *testing.B)) benchgate.Result {
		if skip(name) {
			return benchgate.Result{}
		}
		var res benchgate.Result
		if d := benchgate.Deltas(func() { res = benchgate.Run(name, &results, f) }); d != nil {
			deltas[name] = d
		}
		return res
	}
	measureBest := func(name string, rounds int, f func(b *testing.B)) benchgate.Result {
		if skip(name) {
			return benchgate.Result{}
		}
		var res benchgate.Result
		if d := benchgate.Deltas(func() { res = benchgate.RunBest(name, &results, rounds, f) }); d != nil {
			deltas[name] = d
		}
		return res
	}
	// ratio is a/b, or 0 when either side was filtered out — report
	// fields must stay finite for JSON.
	ratio := func(a, b benchgate.Result) float64 {
		if a.Iterations == 0 || b.Iterations == 0 {
			return 0
		}
		return a.MsPerOp / b.MsPerOp
	}
	seedRatio := func(seedMs float64, r benchgate.Result) float64 {
		if r.Iterations == 0 {
			return 0
		}
		return seedMs / r.MsPerOp
	}

	q5 := experiments.Q5()
	chain := experiments.ChainQuery(7)
	serialQ5 := measure("SaturateQ5/serial", saturateBench(q5, 1))
	parQ5 := measure("SaturateQ5/parallel", saturateBench(q5, -1))
	measure("SaturateChain7/serial", saturateBench(chain, 1))
	measure("SaturateChain7/parallel", saturateBench(chain, -1))

	db := benchDB()
	est := stats.NewEstimator(stats.FromDatabase(db))
	satOptQ5 := measure("OptimizeQ5/saturate", optimizeBench(q5, db, est, optimizer.MemoOff))
	satOptChain := measure("OptimizeChain7/saturate", optimizeBench(chain, db, est, optimizer.MemoOff))
	// The guard- and obs-overhead gates compare at a few percent
	// tolerance, so both sides are measured min-of-3 — a single
	// testing.Benchmark sample jitters more than the overhead being
	// gated.
	memOptQ5 := measureBest("OptimizeQ5/memo", 3, optimizeBench(q5, db, est, optimizer.MemoAuto))
	memOptChain := measureBest("OptimizeChain7/memo", 3, optimizeBench(chain, db, est, optimizer.MemoAuto))
	memOptQ5G := measureBest("OptimizeQ5/memo-guarded", 3, optimizeBenchGuarded(q5, db, est, optimizer.MemoAuto))
	memOptChainG := measureBest("OptimizeChain7/memo-guarded", 3, optimizeBenchGuarded(chain, db, est, optimizer.MemoAuto))
	memOptQ5O := measureBest("OptimizeQ5/memo-observed", 3, optimizeBenchObserved(q5, db, est, optimizer.MemoAuto))

	// One instrumented memo run for the branch-and-bound evidence.
	reg := obs.NewRegistry()
	o := optimizer.New(est)
	o.Opts.MaxPlans = 10000
	o.Opts.Obs = reg
	if _, err := o.Optimize(q5, db); err != nil {
		fmt.Fprintln(os.Stderr, "benchopt:", err)
		os.Exit(1)
	}
	memoPruned := reg.Snapshot().Counters["memo.pruned"]
	fmt.Printf("memo.pruned on Q5: %d extraction candidates cut by branch-and-bound\n", memoPruned)

	closure := core.Saturate(q5, core.SaturateOptions{MaxPlans: 10000})
	costCold := benchgate.Result{}
	costMemo := benchgate.Result{}
	if !skip("CostClosure") {
		costCold = benchgate.Run("CostClosure/estimator", &results, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				for _, p := range closure {
					if _, err := est.PlanCost(p); err != nil {
						b.Fatal(err)
					}
					if _, err := est.Rows(p); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
		costMemo = benchgate.Run("CostClosure/session", &results, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				sess := est.NewSession(nil)
				for _, p := range closure {
					if _, err := sess.PlanCost(p); err != nil {
						b.Fatal(err)
					}
					if _, err := sess.Rows(p); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}

	rep := report{
		Header:            benchgate.NewHeader(seeds, results),
		SpeedupQ5Serial:   seedRatio(seeds[0].MsPerOp, serialQ5),
		SpeedupQ5Parallel: seedRatio(seeds[0].MsPerOp, parQ5),
		SpeedupCostMemo:   ratio(costCold, costMemo),
		SpeedupMemoQ5:     ratio(satOptQ5, memOptQ5),
		SpeedupMemoChain7: ratio(satOptChain, memOptChain),
		MemoPrunedQ5:      memoPruned,

		GuardOverheadQ5:     ratio(memOptQ5G, memOptQ5),
		GuardOverheadChain7: ratio(memOptChainG, memOptChain),
		ObsOverheadQ5:       ratio(memOptQ5O, memOptQ5),
		CounterDeltas:       deltas,
	}
	if err := benchgate.WriteJSON(*out, rep); err != nil {
		fmt.Fprintln(os.Stderr, "benchopt:", err)
		os.Exit(1)
	}
	fmt.Printf("speedups vs seed: Q5 serial %.2fx, Q5 parallel %.2fx; cost memo %.2fx vs cold\n",
		rep.SpeedupQ5Serial, rep.SpeedupQ5Parallel, rep.SpeedupCostMemo)
	fmt.Printf("memo engine vs saturation: Q5 %.2fx, chain7 %.2fx\n",
		rep.SpeedupMemoQ5, rep.SpeedupMemoChain7)
	fmt.Printf("guard overhead (guarded/unguarded): Q5 %.4f, chain7 %.4f\n",
		rep.GuardOverheadQ5, rep.GuardOverheadChain7)
	fmt.Printf("obs overhead (observed/plain): Q5 %.4f\n", rep.ObsOverheadQ5)
	fmt.Println("wrote", *out)

	// Regression gates: the parallel engine must not lose to the serial
	// one, and the memo engine must not lose to saturation, on the
	// canned workloads (ratio 1.0 ± tolerance; on a 1-CPU host
	// Workers:GOMAXPROCS resolves to the serial path, so the parallel
	// gate is exact there and meaningful on multi-core).
	// The guard gates hold the overhead of an untripped budget — the
	// always-on production cost of resource governance — under the
	// guard tolerance (2% by default) on the memo workloads.
	err = benchgate.Check(
		benchgate.Gate{Label: "parallel SaturateQ5 vs serial", Candidate: parQ5, Baseline: serialQ5, Tolerance: *tolerance},
		benchgate.Gate{Label: "memo OptimizeQ5 vs saturation", Candidate: memOptQ5, Baseline: satOptQ5, Tolerance: *tolerance},
		benchgate.Gate{Label: "memo OptimizeChain7 vs saturation", Candidate: memOptChain, Baseline: satOptChain, Tolerance: *tolerance},
		benchgate.Gate{Label: "guarded OptimizeQ5 vs unguarded", Candidate: memOptQ5G, Baseline: memOptQ5, Tolerance: *guardTolerance},
		benchgate.Gate{Label: "guarded OptimizeChain7 vs unguarded", Candidate: memOptChainG, Baseline: memOptChain, Tolerance: *guardTolerance},
		benchgate.Gate{Label: "observed OptimizeQ5 vs plain", Candidate: memOptQ5O, Baseline: memOptQ5, Tolerance: *obsTolerance},
	)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchopt:", err)
		os.Exit(1)
	}
}
