// Command benchopt is the optimizer's benchmark harness: it runs the
// saturation and costing workloads through testing.Benchmark, compares
// the serial engine against the parallel one and the memoized cost
// session against cold estimation, writes the numbers to
// BENCH_optimizer.json, and exits non-zero if the parallel engine is
// slower than the serial one on the canned Q5 workload — the
// regression gate make bench enforces.
//
// Usage:
//
//	benchopt [-out BENCH_optimizer.json] [-tolerance 1.1]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/plan"
	"repro/internal/relation"
	"repro/internal/stats"
	"repro/internal/value"
)

// benchResult is one workload's measurement.
type benchResult struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     int64   `json:"nsPerOp"`
	BytesPerOp  int64   `json:"bytesPerOp"`
	AllocsPerOp int64   `json:"allocsPerOp"`
	MsPerOp     float64 `json:"msPerOp"`
}

// seedBaseline is a pre-change measurement kept for comparison.
type seedBaseline struct {
	Name        string  `json:"name"`
	MsPerOp     float64 `json:"msPerOp"`
	BytesPerOp  int64   `json:"bytesPerOp"`
	AllocsPerOp int64   `json:"allocsPerOp"`
	Note        string  `json:"note"`
}

// report is the BENCH_optimizer.json schema.
type report struct {
	GoMaxProcs int    `json:"gomaxprocs"`
	GoVersion  string `json:"goVersion"`
	// SeedBaselines are the same workloads measured at the pre-change
	// commit (serial engine, no fingerprint cache, no cost memo).
	SeedBaselines []seedBaseline `json:"seedBaselines"`
	Results       []benchResult  `json:"results"`
	// SpeedupQ5Serial is seed SaturateQ5 ms / current serial ms.
	SpeedupQ5Serial float64 `json:"speedupQ5Serial"`
	// SpeedupQ5Parallel is seed SaturateQ5 ms / current parallel ms
	// (workers = GOMAXPROCS).
	SpeedupQ5Parallel float64 `json:"speedupQ5Parallel"`
	// SpeedupCostMemo is cold estimator ms / memoized session ms on
	// the Q5 closure costing pass.
	SpeedupCostMemo float64 `json:"speedupCostMemo"`
}

// Seed numbers measured at the pre-change commit on this container
// (GOMAXPROCS=1, Intel Xeon 2.10GHz); see BENCH_optimizer.json
// history.
var seeds = []seedBaseline{
	{Name: "SaturateQ5", MsPerOp: 204.7, BytesPerOp: 57400000, AllocsPerOp: 1485045,
		Note: "serial saturation of Q5 (closure 2752 plans, cap 10000), pre-fingerprint"},
	{Name: "SaturateChain7", MsPerOp: 609.7, BytesPerOp: 172300000, AllocsPerOp: 4191999,
		Note: "serial saturation of the 7-relation chain, hits the 10000-plan cap"},
	{Name: "CostClosure", MsPerOp: 11.79, BytesPerOp: 1600000, AllocsPerOp: 96672,
		Note: "PlanCost+Rows over all 2752 Q5 closure members, no memo"},
}

func benchDB() plan.Database {
	db := plan.Database{}
	for i := 1; i <= 7; i++ {
		name := fmt.Sprintf("r%d", i)
		b := relation.NewBuilder(name, "x", "y")
		for j := 0; j < 50; j++ {
			b.Row(value.NewInt(int64(j%9)), value.NewInt(int64(j%6)))
		}
		db[name] = b.Relation()
	}
	return db
}

func run(name string, results *[]benchResult, f func(b *testing.B)) benchResult {
	r := testing.Benchmark(f)
	res := benchResult{
		Name:        name,
		Iterations:  r.N,
		NsPerOp:     r.NsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
		MsPerOp:     float64(r.NsPerOp()) / 1e6,
	}
	*results = append(*results, res)
	fmt.Printf("%-28s %4d iter  %10.2f ms/op  %12d B/op  %9d allocs/op\n",
		name, res.Iterations, res.MsPerOp, res.BytesPerOp, res.AllocsPerOp)
	return res
}

func saturateBench(q plan.Node, workers int) func(b *testing.B) {
	return func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			core.Saturate(q, core.SaturateOptions{MaxPlans: 10000, Workers: workers})
		}
	}
}

func main() {
	out := flag.String("out", "BENCH_optimizer.json", "where to write the JSON report")
	tolerance := flag.Float64("tolerance", 1.10, "max allowed parallel/serial time ratio on Q5 before failing")
	flag.Parse()

	fmt.Printf("benchopt: GOMAXPROCS=%d %s\n", runtime.GOMAXPROCS(0), runtime.Version())
	var results []benchResult

	q5 := experiments.Q5()
	chain := experiments.ChainQuery(7)
	serialQ5 := run("SaturateQ5/serial", &results, saturateBench(q5, 1))
	parQ5 := run("SaturateQ5/parallel", &results, saturateBench(q5, -1))
	run("SaturateChain7/serial", &results, saturateBench(chain, 1))
	run("SaturateChain7/parallel", &results, saturateBench(chain, -1))

	db := benchDB()
	est := stats.NewEstimator(stats.FromDatabase(db))
	closure := core.Saturate(q5, core.SaturateOptions{MaxPlans: 10000})
	costCold := run("CostClosure/estimator", &results, func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, p := range closure {
				if _, err := est.PlanCost(p); err != nil {
					b.Fatal(err)
				}
				if _, err := est.Rows(p); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	costMemo := run("CostClosure/session", &results, func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sess := est.NewSession(nil)
			for _, p := range closure {
				if _, err := sess.PlanCost(p); err != nil {
					b.Fatal(err)
				}
				if _, err := sess.Rows(p); err != nil {
					b.Fatal(err)
				}
			}
		}
	})

	rep := report{
		GoMaxProcs:        runtime.GOMAXPROCS(0),
		GoVersion:         runtime.Version(),
		SeedBaselines:     seeds,
		Results:           results,
		SpeedupQ5Serial:   seeds[0].MsPerOp / serialQ5.MsPerOp,
		SpeedupQ5Parallel: seeds[0].MsPerOp / parQ5.MsPerOp,
		SpeedupCostMemo:   costCold.MsPerOp / costMemo.MsPerOp,
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchopt:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchopt:", err)
		os.Exit(1)
	}
	fmt.Printf("speedups vs seed: Q5 serial %.2fx, Q5 parallel %.2fx; cost memo %.2fx vs cold\n",
		rep.SpeedupQ5Serial, rep.SpeedupQ5Parallel, rep.SpeedupCostMemo)
	fmt.Println("wrote", *out)

	// Regression gate: the parallel engine must not lose to the serial
	// one on the canned workload (ratio 1.0 ± tolerance; on a 1-CPU
	// host Workers:GOMAXPROCS resolves to the serial path, so the gate
	// is exact there and meaningful on multi-core).
	if ratio := parQ5.MsPerOp / serialQ5.MsPerOp; ratio > *tolerance {
		fmt.Fprintf(os.Stderr, "benchopt: FAIL parallel SaturateQ5 is %.2fx the serial time (tolerance %.2fx)\n",
			ratio, *tolerance)
		os.Exit(1)
	}
}
