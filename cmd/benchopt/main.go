// Command benchopt is the optimizer's benchmark harness: it runs the
// saturation, memo-exploration and costing workloads through
// testing.Benchmark, compares the serial engine against the parallel
// one, the memo engine against saturation, and the memoized cost
// session against cold estimation, writes the numbers to
// BENCH_optimizer.json, and exits non-zero if the parallel engine is
// slower than the serial one — or the memo engine slower than
// saturation — on the canned workloads; these are the regression
// gates make bench enforces.
//
// Usage:
//
//	benchopt [-out BENCH_optimizer.json] [-tolerance 1.1]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"regexp"
	"runtime"
	"strings"
	"testing"

	"repro/internal/algebra"
	"repro/internal/benchgate"
	"repro/internal/core"
	"repro/internal/executor"
	"repro/internal/experiments"
	"repro/internal/expr"
	"repro/internal/guard"
	"repro/internal/obs"
	"repro/internal/obs/flight"
	"repro/internal/optimizer"
	"repro/internal/plan"
	"repro/internal/relation"
	"repro/internal/schema"
	"repro/internal/stats"
	"repro/internal/value"
)

// report is the BENCH_optimizer.json schema.
type report struct {
	benchgate.Header
	// SpeedupQ5Serial is seed SaturateQ5 ms / current serial ms.
	SpeedupQ5Serial float64 `json:"speedupQ5Serial"`
	// SpeedupQ5Parallel is seed SaturateQ5 ms / current parallel ms
	// (workers = GOMAXPROCS).
	SpeedupQ5Parallel float64 `json:"speedupQ5Parallel"`
	// SpeedupCostMemo is cold estimator ms / memoized session ms on
	// the Q5 closure costing pass.
	SpeedupCostMemo float64 `json:"speedupCostMemo"`
	// SpeedupMemoQ5 is the full-optimization saturation ms / memo
	// engine ms on Q5 (enumerate + cost + pick best, end to end).
	SpeedupMemoQ5 float64 `json:"speedupMemoQ5"`
	// SpeedupMemoChain7 is the same ratio on the 7-relation chain,
	// where both engines hit the 10000 cap.
	SpeedupMemoChain7 float64 `json:"speedupMemoChain7"`
	// MemoPrunedQ5 is the memo.pruned counter from one memo-engine Q5
	// optimization: extraction candidates discarded by branch-and-bound
	// before full costing.
	MemoPrunedQ5 int64 `json:"memoPrunedQ5"`
	// GuardOverheadQ5 and GuardOverheadChain7 are the guarded /
	// unguarded time ratios on the memo-engine optimizations: the cost
	// of threading an untripped budget (cancellation + expression
	// accounting at every wave boundary) through the whole run.
	GuardOverheadQ5     float64 `json:"guardOverheadQ5"`
	GuardOverheadChain7 float64 `json:"guardOverheadChain7"`
	// ObsOverheadQ5 is the observed / plain time ratio on the memo-engine
	// Q5 optimization: the cost of metering against a private registry,
	// merging it into the process aggregate and depositing a flight
	// record — the full observability pipeline.
	ObsOverheadQ5 float64 `json:"obsOverheadQ5"`
	// SpeedupOrderMerge is the end-to-end execution time of the forced
	// hash-join-plus-root-sort plan divided by the optimizer-picked
	// merge plan on the sorted-input order workload — the tentpole's
	// ≥2x gate. SpeedupOrderStreamAgg is the same ratio for streaming
	// aggregation vs hash aggregation plus a root sort.
	SpeedupOrderMerge     float64 `json:"speedupOrderMerge"`
	SpeedupOrderStreamAgg float64 `json:"speedupOrderStreamAgg"`
	// OrderEnforcedSorts counts enforcer Sort nodes across both
	// order-workload winners; the redundant-sort-elimination assertion
	// requires it to be zero.
	OrderEnforcedSorts int `json:"orderEnforcedSorts"`
	// CounterDeltas maps workload name → the default-registry counter
	// movement (obs.Snapshot.Diff) across that workload's measurement.
	CounterDeltas map[string]map[string]int64 `json:"counterDeltas,omitempty"`
}

// Seed numbers measured at the pre-change commit on this container
// (GOMAXPROCS=1, Intel Xeon 2.10GHz); see BENCH_optimizer.json
// history.
var seeds = []benchgate.SeedBaseline{
	{Name: "SaturateQ5", MsPerOp: 204.7, BytesPerOp: 57400000, AllocsPerOp: 1485045,
		Note: "serial saturation of Q5 (closure 2752 plans, cap 10000), pre-fingerprint"},
	{Name: "SaturateChain7", MsPerOp: 609.7, BytesPerOp: 172300000, AllocsPerOp: 4191999,
		Note: "serial saturation of the 7-relation chain, hits the 10000-plan cap"},
	{Name: "CostClosure", MsPerOp: 11.79, BytesPerOp: 1600000, AllocsPerOp: 96672,
		Note: "PlanCost+Rows over all 2752 Q5 closure members, no memo"},
	// The order-workload seeds are the forced pre-order-aware plans —
	// hash join / hash aggregation with a root sort bolted on — which
	// is the best spelling the optimizer could produce before physical
	// sort properties existed. The gates require the order-aware
	// winners to beat them (merge by ≥2x, the tentpole floor).
	{Name: "OrderExecJoin", MsPerOp: 129.67, BytesPerOp: 86241240, AllocsPerOp: 240826,
		Note: "hash join s1⋈s2 (60k×120k sorted string keys, fan-out 2) + root sort of 120k rows"},
	{Name: "OrderExecAgg", MsPerOp: 120.10, BytesPerOp: 64790019, AllocsPerOp: 480602,
		Note: "hash GROUP BY k over s1 (60k sorted string keys) + root sort of 60k groups"},
}

// orderDB builds two physically sorted relations for the order
// workloads: s1 with a strictly ascending zero-padded string key k
// (string comparisons share a long prefix, so the forced root sort's
// n log n comparator passes are expensive while the single merge pass
// stays linear), s2 with every key duplicated (fan-out 2, doubling
// the join output the root sort must swallow), both with a payload
// column v. ANALYZE-time DetectOrder records both as sorted.
func orderDB(rows int) plan.Database {
	db := plan.Database{}
	key := func(i int) value.Value { return value.NewString(fmt.Sprintf("key-%08d", i)) }
	b1 := relation.NewBuilder("s1", "k", "v")
	for i := 0; i < rows; i++ {
		b1.Row(key(i), value.NewInt(int64((i*2654435761)%1000)))
	}
	db["s1"] = b1.Relation()
	b2 := relation.NewBuilder("s2", "k", "v")
	for i := 0; i < rows; i++ {
		for d := 0; d < 2; d++ {
			b2.Row(key(i), value.NewInt(int64((i*40503+d)%1000)))
		}
	}
	db["s2"] = b2.Relation()
	return db
}

// orderJoinQuery is SELECT * FROM s1 JOIN s2 ON s1.k = s2.k ORDER BY
// s1.k — the redundant-sort shape: over sorted inputs a merge join on
// k delivers the required order for free, while the pre-order-aware
// optimizer could only bolt a full sort onto a hash join.
func orderJoinQuery() plan.Node {
	j := plan.NewJoin(plan.InnerJoin, expr.EqCols("s1", "k", "s2", "k"),
		plan.NewScan("s1"), plan.NewScan("s2"))
	return plan.NewSortOrigin([]plan.SortKey{{Attr: schema.Attr("s1", "k")}}, -1, j, plan.SortOriginQuery)
}

// orderAggQuery is SELECT k, COUNT(*), SUM(v) FROM s1 GROUP BY k
// ORDER BY k — satisfied sort-free by a streaming aggregation over
// the sorted scan.
func orderAggQuery() plan.Node {
	g := plan.NewGroupBy(
		[]schema.Attribute{schema.Attr("s1", "k")},
		[]algebra.Aggregate{
			{Func: algebra.CountStar, Out: schema.Attr("q", "n")},
			{Func: algebra.Sum, Arg: expr.Column("s1", "v"), Out: schema.Attr("q", "s"), NullIfEmpty: true},
		},
		plan.NewScan("s1"))
	return plan.NewSortOrigin([]plan.SortKey{{Attr: schema.Attr("s1", "k")}}, -1, g, plan.SortOriginQuery)
}

// optimizeOrderWinner runs the memo engine on an order-shaped query
// and asserts the tentpole's elimination contract: Result.Order set,
// zero enforcer sorts anywhere in the winner, the wanted physical
// operator present, EXPLAIN carrying the "eliminated" provenance, and
// the memo.order.* counters agreeing. Exits non-zero on violation.
func optimizeOrderWinner(q plan.Node, db plan.Database, est *stats.Estimator, wantOp string) (plan.Node, int) {
	reg := obs.NewRegistry()
	o := optimizer.New(est)
	o.Opts.UseMemo = optimizer.MemoAuto
	o.Opts.MaxPlans = 10000
	o.Opts.Obs = reg
	res, err := o.Optimize(q, db)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchopt: order workload:", err)
		os.Exit(1)
	}
	fail := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "benchopt: order workload %s: "+format+"\n", append([]any{wantOp}, args...)...)
		fmt.Fprintln(os.Stderr, plan.Indent(res.Best.Plan))
		os.Exit(1)
	}
	if res.Order == nil {
		fail("root ORDER BY was not pushed into the memo as a property")
	}
	sorts, wanted := 0, 0
	plan.Walk(res.Best.Plan, func(n plan.Node) {
		switch m := n.(type) {
		case *plan.Sort:
			sorts++
			_ = m
		case *plan.MergeJoin:
			if wantOp == "mergejoin" {
				wanted++
			}
		case *plan.StreamAgg:
			if wantOp == "streamagg" {
				wanted++
			}
		}
	})
	if !res.Order.Eliminated() || sorts != 0 {
		fail("requirement not eliminated: enforced=%d, %d sort nodes", res.Order.Enforced, sorts)
	}
	if wanted == 0 {
		fail("winner does not contain the order-consuming operator")
	}
	c := reg.Snapshot().Counters
	if c["memo.order.eliminated"] != 1 || c["memo.order.enforced"] != 0 {
		fail("memo.order counters: eliminated=%d enforced=%d, want 1/0",
			c["memo.order.eliminated"], c["memo.order.enforced"])
	}
	if !strings.Contains(optimizer.Explain(res), "(eliminated)") {
		fail("EXPLAIN does not carry the eliminated provenance:\n%s", optimizer.Explain(res))
	}
	if err := plan.Validate(res.Best.Plan, db); err != nil {
		fail("winner fails validation: %v", err)
	}
	return res.Best.Plan, res.Order.Enforced
}

// execBench measures end-to-end execution of a fixed plan.
func execBench(p plan.Node, db plan.Database) func(b *testing.B) {
	return func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := executor.Run(p, db); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func benchDB() plan.Database {
	db := plan.Database{}
	for i := 1; i <= 7; i++ {
		name := fmt.Sprintf("r%d", i)
		b := relation.NewBuilder(name, "x", "y")
		for j := 0; j < 50; j++ {
			b.Row(value.NewInt(int64(j%9)), value.NewInt(int64(j%6)))
		}
		db[name] = b.Relation()
	}
	return db
}

func saturateBench(q plan.Node, workers int) func(b *testing.B) {
	return func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			core.Saturate(q, core.SaturateOptions{MaxPlans: 10000, Workers: workers})
		}
	}
}

// optimizeBench measures a full optimization — enumerate, cost, pick
// best — with the given engine, metering against the default registry
// (so the workload's counter deltas land in the report).
func optimizeBench(q plan.Node, db plan.Database, est *stats.Estimator, mode optimizer.MemoMode) func(b *testing.B) {
	return func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			o := optimizer.New(est)
			o.Opts.UseMemo = mode
			o.Opts.MaxPlans = 10000
			if _, err := o.Optimize(q, db); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// optimizeBenchGuarded is optimizeBench with a budget that never
// trips threaded through the run — it measures pure guard overhead.
func optimizeBenchGuarded(q plan.Node, db plan.Database, est *stats.Estimator, mode optimizer.MemoMode) func(b *testing.B) {
	return func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			o := optimizer.New(est)
			o.Opts.UseMemo = mode
			o.Opts.MaxPlans = 10000
			o.Opts.Budget = guard.New(context.Background(), guard.Limits{MaxExprs: 1 << 40}, nil)
			if _, err := o.Optimize(q, db); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// optimizeBenchObserved is optimizeBench plus the full observability
// pipeline per iteration: meter against a private registry, merge it
// into the process aggregate, deposit a flight record. The gate holds
// this within the obs tolerance of the plain run — observability must
// stay within noise of the un-observed optimizer.
func optimizeBenchObserved(q plan.Node, db plan.Database, est *stats.Estimator, mode optimizer.MemoMode) func(b *testing.B) {
	rec := flight.New(0)
	return func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			o := optimizer.New(est)
			o.Opts.UseMemo = mode
			o.Opts.MaxPlans = 10000
			reg := obs.NewRegistry()
			o.Opts.Obs = reg
			res, err := o.Optimize(q, db)
			if err != nil {
				b.Fatal(err)
			}
			obs.Default().Merge(reg)
			rec.Add(flight.Record{
				Query:    plan.Key(q),
				PlanKey:  plan.Key(res.Best.Plan),
				Degraded: res.Degraded,
				Counters: reg.Snapshot().Counters,
			})
		}
	}
}

func main() {
	out := flag.String("out", "BENCH_optimizer.json", "where to write the JSON report")
	tolerance := flag.Float64("tolerance", 1.10, "max allowed candidate/baseline time ratio before failing")
	guardTolerance := flag.Float64("guard-tolerance", 1.02, "max allowed guarded/unguarded time ratio (guard overhead budget)")
	obsTolerance := flag.Float64("obs-tolerance", 1.02, "max allowed observed/plain time ratio (observability overhead budget)")
	workload := flag.String("workload", "", "only measure workloads whose name matches this regexp; gates and ratios on skipped workloads are skipped")
	flag.Parse()
	filter, err := regexp.Compile(*workload)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchopt: bad -workload:", err)
		os.Exit(2)
	}
	skip := func(name string) bool { return *workload != "" && !filter.MatchString(name) }

	fmt.Printf("benchopt: GOMAXPROCS=%d %s\n", runtime.GOMAXPROCS(0), runtime.Version())
	var results []benchgate.Result
	deltas := map[string]map[string]int64{}
	measure := func(name string, f func(b *testing.B)) benchgate.Result {
		if skip(name) {
			return benchgate.Result{}
		}
		var res benchgate.Result
		if d := benchgate.Deltas(func() { res = benchgate.Run(name, &results, f) }); d != nil {
			deltas[name] = d
		}
		return res
	}
	measureBest := func(name string, rounds int, f func(b *testing.B)) benchgate.Result {
		if skip(name) {
			return benchgate.Result{}
		}
		var res benchgate.Result
		if d := benchgate.Deltas(func() { res = benchgate.RunBest(name, &results, rounds, f) }); d != nil {
			deltas[name] = d
		}
		return res
	}
	// ratio is a/b, or 0 when either side was filtered out — report
	// fields must stay finite for JSON.
	ratio := func(a, b benchgate.Result) float64 {
		if a.Iterations == 0 || b.Iterations == 0 {
			return 0
		}
		return a.MsPerOp / b.MsPerOp
	}
	seedRatio := func(seedMs float64, r benchgate.Result) float64 {
		if r.Iterations == 0 {
			return 0
		}
		return seedMs / r.MsPerOp
	}

	q5 := experiments.Q5()
	chain := experiments.ChainQuery(7)
	serialQ5 := measure("SaturateQ5/serial", saturateBench(q5, 1))
	parQ5 := measure("SaturateQ5/parallel", saturateBench(q5, -1))
	measure("SaturateChain7/serial", saturateBench(chain, 1))
	measure("SaturateChain7/parallel", saturateBench(chain, -1))

	db := benchDB()
	est := stats.NewEstimator(stats.FromDatabase(db))
	satOptQ5 := measure("OptimizeQ5/saturate", optimizeBench(q5, db, est, optimizer.MemoOff))
	satOptChain := measure("OptimizeChain7/saturate", optimizeBench(chain, db, est, optimizer.MemoOff))
	// The guard- and obs-overhead gates compare at a few percent
	// tolerance, so both sides are measured min-of-3 — a single
	// testing.Benchmark sample jitters more than the overhead being
	// gated.
	memOptQ5 := measureBest("OptimizeQ5/memo", 3, optimizeBench(q5, db, est, optimizer.MemoAuto))
	memOptChain := measureBest("OptimizeChain7/memo", 3, optimizeBench(chain, db, est, optimizer.MemoAuto))
	memOptQ5G := measureBest("OptimizeQ5/memo-guarded", 3, optimizeBenchGuarded(q5, db, est, optimizer.MemoAuto))
	memOptChainG := measureBest("OptimizeChain7/memo-guarded", 3, optimizeBenchGuarded(chain, db, est, optimizer.MemoAuto))
	memOptQ5O := measureBest("OptimizeQ5/memo-observed", 3, optimizeBenchObserved(q5, db, est, optimizer.MemoAuto))

	// One instrumented memo run for the branch-and-bound evidence.
	reg := obs.NewRegistry()
	o := optimizer.New(est)
	o.Opts.MaxPlans = 10000
	o.Opts.Obs = reg
	if _, err := o.Optimize(q5, db); err != nil {
		fmt.Fprintln(os.Stderr, "benchopt:", err)
		os.Exit(1)
	}
	memoPruned := reg.Snapshot().Counters["memo.pruned"]
	fmt.Printf("memo.pruned on Q5: %d extraction candidates cut by branch-and-bound\n", memoPruned)

	// Order workloads: the optimizer must turn the redundant-sort
	// queries into sort-free merge/streaming plans (hard assertions
	// inside optimizeOrderWinner), and those plans must beat the
	// forced hash-plus-root-sort spellings end-to-end.
	odb := orderDB(60000)
	oest := stats.NewEstimator(stats.FromDatabase(odb))
	enforcedSorts := 0
	var mergeExec, hashSortExec, streamExec, hashAggExec benchgate.Result
	if !skip("OrderExecJoin") {
		mergePlan, enf := optimizeOrderWinner(orderJoinQuery(), odb, oest, "mergejoin")
		enforcedSorts += enf
		mergeExec = measureBest("OrderExecJoin/merge", 3, execBench(mergePlan, odb))
		hashSortExec = measureBest("OrderExecJoin/hash+sort", 3, execBench(orderJoinQuery(), odb))
	}
	if !skip("OrderExecAgg") {
		streamPlan, enf := optimizeOrderWinner(orderAggQuery(), odb, oest, "streamagg")
		enforcedSorts += enf
		streamExec = measureBest("OrderExecAgg/stream", 3, execBench(streamPlan, odb))
		hashAggExec = measureBest("OrderExecAgg/hash+sort", 3, execBench(orderAggQuery(), odb))
	}

	closure := core.Saturate(q5, core.SaturateOptions{MaxPlans: 10000})
	costCold := benchgate.Result{}
	costMemo := benchgate.Result{}
	if !skip("CostClosure") {
		costCold = benchgate.Run("CostClosure/estimator", &results, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				for _, p := range closure {
					if _, err := est.PlanCost(p); err != nil {
						b.Fatal(err)
					}
					if _, err := est.Rows(p); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
		costMemo = benchgate.Run("CostClosure/session", &results, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				sess := est.NewSession(nil)
				for _, p := range closure {
					if _, err := sess.PlanCost(p); err != nil {
						b.Fatal(err)
					}
					if _, err := sess.Rows(p); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}

	rep := report{
		Header:            benchgate.NewHeader(seeds, results),
		SpeedupQ5Serial:   seedRatio(seeds[0].MsPerOp, serialQ5),
		SpeedupQ5Parallel: seedRatio(seeds[0].MsPerOp, parQ5),
		SpeedupCostMemo:   ratio(costCold, costMemo),
		SpeedupMemoQ5:     ratio(satOptQ5, memOptQ5),
		SpeedupMemoChain7: ratio(satOptChain, memOptChain),
		MemoPrunedQ5:      memoPruned,

		GuardOverheadQ5:     ratio(memOptQ5G, memOptQ5),
		GuardOverheadChain7: ratio(memOptChainG, memOptChain),
		ObsOverheadQ5:       ratio(memOptQ5O, memOptQ5),

		SpeedupOrderMerge:     ratio(hashSortExec, mergeExec),
		SpeedupOrderStreamAgg: ratio(hashAggExec, streamExec),
		OrderEnforcedSorts:    enforcedSorts,
		CounterDeltas:         deltas,
	}
	if err := benchgate.WriteJSON(*out, rep); err != nil {
		fmt.Fprintln(os.Stderr, "benchopt:", err)
		os.Exit(1)
	}
	fmt.Printf("speedups vs seed: Q5 serial %.2fx, Q5 parallel %.2fx; cost memo %.2fx vs cold\n",
		rep.SpeedupQ5Serial, rep.SpeedupQ5Parallel, rep.SpeedupCostMemo)
	fmt.Printf("memo engine vs saturation: Q5 %.2fx, chain7 %.2fx\n",
		rep.SpeedupMemoQ5, rep.SpeedupMemoChain7)
	fmt.Printf("guard overhead (guarded/unguarded): Q5 %.4f, chain7 %.4f\n",
		rep.GuardOverheadQ5, rep.GuardOverheadChain7)
	fmt.Printf("obs overhead (observed/plain): Q5 %.4f\n", rep.ObsOverheadQ5)
	fmt.Printf("order workloads: merge vs hash+sort %.2fx, stream agg vs hash+sort %.2fx, enforcer sorts %d\n",
		rep.SpeedupOrderMerge, rep.SpeedupOrderStreamAgg, rep.OrderEnforcedSorts)
	fmt.Println("wrote", *out)

	// Regression gates: the parallel engine must not lose to the serial
	// one, and the memo engine must not lose to saturation, on the
	// canned workloads (ratio 1.0 ± tolerance; on a 1-CPU host
	// Workers:GOMAXPROCS resolves to the serial path, so the parallel
	// gate is exact there and meaningful on multi-core).
	// The guard gates hold the overhead of an untripped budget — the
	// always-on production cost of resource governance — under the
	// guard tolerance (2% by default) on the memo workloads.
	err = benchgate.Check(
		benchgate.Gate{Label: "parallel SaturateQ5 vs serial", Candidate: parQ5, Baseline: serialQ5, Tolerance: *tolerance},
		benchgate.Gate{Label: "memo OptimizeQ5 vs saturation", Candidate: memOptQ5, Baseline: satOptQ5, Tolerance: *tolerance},
		benchgate.Gate{Label: "memo OptimizeChain7 vs saturation", Candidate: memOptChain, Baseline: satOptChain, Tolerance: *tolerance},
		benchgate.Gate{Label: "guarded OptimizeQ5 vs unguarded", Candidate: memOptQ5G, Baseline: memOptQ5, Tolerance: *guardTolerance},
		benchgate.Gate{Label: "guarded OptimizeChain7 vs unguarded", Candidate: memOptChainG, Baseline: memOptChain, Tolerance: *guardTolerance},
		benchgate.Gate{Label: "observed OptimizeQ5 vs plain", Candidate: memOptQ5O, Baseline: memOptQ5, Tolerance: *obsTolerance},
		// The tentpole gate: the optimizer-picked merge plan must run at
		// least twice as fast end-to-end as the forced hash-join-plus-
		// root-sort plan on sorted inputs (candidate/baseline <= 0.5).
		benchgate.Gate{Label: "order-aware merge plan vs forced hash join + root sort (>=2x)", Candidate: mergeExec, Baseline: hashSortExec, Tolerance: 0.5},
		// Streaming aggregation must at minimum not lose to hash
		// aggregation plus a root sort over the same sorted input.
		benchgate.Gate{Label: "order-aware stream agg vs hash agg + root sort", Candidate: streamExec, Baseline: hashAggExec, Tolerance: 1.0},
	)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchopt:", err)
		os.Exit(1)
	}
}
