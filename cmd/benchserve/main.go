// Command benchserve is the open-loop traffic generator and
// regression gate for the query service. It self-hosts a reorderd
// configuration (demo database, real HTTP listener), drives it with
// fixed-arrival-rate traffic — open-loop, so a slow server accumulates
// backlog instead of slowing the generator down, which is what exposes
// saturation — and writes BENCH_serve.json.
//
// Phases:
//
//	warm     one request per template: populates the plan cache and
//	         proves one optimization per distinct template.
//	hit      open-loop at -rate on cached templates with random
//	         constants — the amortized serving path.
//	miss     open-loop at -miss-rate with cache:"bypass" — the full
//	         parse→optimize→execute path on every request.
//	probe    short closed-loop burst of bypass traffic to estimate the
//	         saturation rate.
//	overload open-loop bypass traffic at 2x the measured saturation
//	         rate: sustained overdrive must yield typed outcomes only.
//	burst    more simultaneous bypass arrivals than the admission bound
//	         holds: the excess must shed with typed 429s, never panic,
//	         and the server must drain its goroutines afterwards.
//
// Gates: cache-hit P50 must be ≥10x below miss P50; plancache.misses
// must equal the distinct template count; the overload and burst
// phases must complete with typed rejections only and the burst must
// actually shed.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"os"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro"
	"repro/internal/benchgate"
	"repro/internal/datagen"
	"repro/internal/obs"
	"repro/internal/relation"
	"repro/internal/value"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

const (
	exitOK      = 0
	exitUsage   = 2
	exitRuntime = 1
	exitGate    = 1
)

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchserve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		out      = fs.String("out", "BENCH_serve.json", "report path")
		rate     = fs.Float64("rate", 40, "hit-phase arrival rate (requests/sec)")
		missRate = fs.Float64("miss-rate", 2, "miss-phase arrival rate (requests/sec)")
		dur      = fs.Duration("duration", 2*time.Second, "open-loop phase duration")
		probeDur = fs.Duration("probe", 1500*time.Millisecond, "saturation probe duration")
		conc     = fs.Int("concurrency", 4, "server MaxConcurrent")
		queue    = fs.Int("queue", 16, "server MaxQueue")
		workers  = fs.Int("workers", 0, "server optimizer workers")
		short    = fs.Bool("short", false, "smoke mode: shorter phases, same assertions")
	)
	if err := fs.Parse(args); err != nil {
		return exitUsage
	}
	if *short {
		// serve-smoke runs this under -race, which slows the hit path
		// ~5x on a single core; keep the arrival rate well under that
		// capacity so the hit-phase no-shed gate measures the server,
		// not the instrumentation.
		*dur = 1500 * time.Millisecond
		*probeDur = 500 * time.Millisecond
		*rate = 4
		*missRate = 1
		*queue = 8
	}

	baseGoroutines := runtime.NumGoroutine()

	// Self-host the service on an ephemeral port, exactly as reorderd
	// -demo would configure it.
	svc, err := reorder.NewService(reorder.ServiceConfig{
		DB:             demoDB(),
		MaxConcurrent:  *conc,
		MaxQueue:       *queue,
		Workers:        *workers,
		DefaultTimeout: 10 * time.Second,
	})
	if err != nil {
		fmt.Fprintf(stderr, "benchserve: %v\n", err)
		return exitRuntime
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fmt.Fprintf(stderr, "benchserve: %v\n", err)
		return exitRuntime
	}
	srv := &http.Server{Handler: svc.Handler()}
	go srv.Serve(ln)
	base := "http://" + ln.Addr().String()
	client := &http.Client{Timeout: 15 * time.Second}
	g := &gen{base: base, client: client, rng: rand.New(rand.NewSource(1))}

	fmt.Fprintf(stdout, "benchserve: serving %s\n", base)

	// Warm: one request per distinct template. Every one must be a
	// cache miss (it optimizes) and every later hit-phase request must
	// not be.
	for i, q := range templates {
		r := g.send(q.sql(g.rng), "")
		if r.outcome != "ok" {
			fmt.Fprintf(stderr, "benchserve: warm template %d failed: %s %s\n", i, r.outcome, r.errMsg)
			return exitRuntime
		}
		if r.cache != "miss" {
			fmt.Fprintf(stderr, "benchserve: warm template %d: want cache miss, got %q\n", i, r.cache)
			return exitRuntime
		}
	}

	// Hit and miss phases both drive the Q5-shaped 6-relation chain —
	// the headline gate compares the amortized path against the full
	// optimization on the same traffic shape. The other templates are
	// exercised by warm (per-template cache keying) and by the
	// overload/burst phases.
	q5 := templates[0]

	// Hit phase: open loop on the cached template.
	hit := g.openLoop("hit", *rate, *dur, func(rng *rand.Rand) (string, string) {
		return q5.sql(rng), ""
	})
	fmt.Fprintln(stdout, hit)

	// Miss phase: same template, cache bypassed — every request pays
	// the full optimization.
	miss := g.openLoop("miss", *missRate, *dur, func(rng *rand.Rand) (string, string) {
		return q5.sql(rng), "bypass"
	})
	fmt.Fprintln(stdout, miss)

	// Saturation probe: closed loop, one worker per server slot, on
	// the expensive path.
	satRate := g.probeSaturation(*conc, *probeDur)
	fmt.Fprintf(stdout, "saturation ≈ %.1f req/s (bypass)\n", satRate)

	// Overload: open loop at 2x measured saturation on the expensive
	// path — sustained overdrive must produce only typed outcomes
	// (ok, shed, deadline), never an untyped error or a panic.
	overload := g.openLoop("overload", 2*satRate, *dur, func(rng *rand.Rand) (string, string) {
		return templates[rng.Intn(len(templates))].sql(rng), "bypass"
	})
	fmt.Fprintln(stdout, overload)

	// Burst: more simultaneous arrivals than the admission bound
	// (MaxConcurrent+MaxQueue inflight) can hold. The excess cannot be
	// absorbed — arrivals land in microseconds while service times are
	// hundreds of milliseconds — so typed 429 shedding is exercised
	// deterministically, independent of how accurately the saturation
	// probe estimated capacity.
	burst := g.burst(*conc + *queue + 12)
	fmt.Fprintln(stdout, burst)

	// Feedback recovery: the skewed workload whose static plan is ≥10x
	// misestimated, served by two in-process services — feedback on vs
	// off. The on-service must trip the drift detector, replan within
	// five requests, and hold a ≥3x steady-state latency advantage.
	fb, fbErr := feedbackPhase(*short, *workers, stdout)
	if fbErr != nil {
		fmt.Fprintf(stderr, "benchserve: feedback phase: %v\n", fbErr)
		return exitRuntime
	}

	// Scrape and validate /metrics before shutdown.
	families, err := scrapeMetrics(client, base)
	if err != nil {
		fmt.Fprintf(stderr, "benchserve: /metrics: %v\n", err)
		return exitRuntime
	}
	cacheHits := promCounter(families, "plancache_hits")
	cacheMisses := promCounter(families, "plancache_misses")

	// Drain: stop the server and wait for goroutines to return to
	// baseline (small slack for the http runtime's pollers).
	srv.Close()
	drained := waitGoroutines(baseGoroutines+8, 5*time.Second)

	stats := svc.CacheStats()
	report := serveReport{
		GoMaxProcs:   runtime.GOMAXPROCS(0),
		GoVersion:    runtime.Version(),
		Templates:    len(templates),
		SatRate:      satRate,
		Seeds:        seedBaselines,
		Phases:       []phaseStats{hit, miss, overload, burst},
		CacheHits:    cacheHits,
		CacheMisses:  cacheMisses,
		Evictions:    stats.Evicted,
		Singleflight: stats.Waits,
		Feedback:     fb,
	}

	// Gates.
	var failures []string
	check := func(ok bool, format string, args ...any) {
		if !ok {
			failures = append(failures, fmt.Sprintf(format, args...))
		}
	}
	check(hit.OK > 0, "hit phase completed no requests")
	check(miss.OK > 0, "miss phase completed no requests")
	check(hit.P50Ms*10 <= miss.P50Ms,
		"cache-hit P50 %.3fms is not ≥10x below miss P50 %.3fms", hit.P50Ms, miss.P50Ms)
	check(cacheMisses == int64(len(templates)),
		"plancache.misses=%d, want exactly one optimization per distinct template (%d)", cacheMisses, len(templates))
	check(cacheHits >= int64(hit.OK),
		"plancache.hits=%d < hit-phase completions %d", cacheHits, hit.OK)
	check(hit.Shed == 0 && hit.Errors == 0,
		"hit phase saw %d sheds and %d errors at the nominal rate", hit.Shed, hit.Errors)
	check(burst.Shed > 0, "burst beyond the admission bound shed nothing — queue bound not exercised")
	check(burst.Errors == 0,
		"burst produced %d untyped errors (want typed shed/deadline only)", burst.Errors)
	check(overload.Errors == 0,
		"overload produced %d untyped errors (want typed shed/deadline only)", overload.Errors)
	check(drained, "goroutines did not return to baseline after shutdown")
	check(fb.FirstMaxQError >= 10,
		"skewed workload's first-run max q-error %.1f < 10 — the static plan is not misestimated enough to gate on", fb.FirstMaxQError)
	check(fb.ReplanByRequest >= 0 && fb.ReplanByRequest <= 5,
		"feedback replan landed at request %d, want within 5", fb.ReplanByRequest)
	check(fb.OnP50Ms*3 <= fb.OffP50Ms,
		"feedback steady-state P50 %.3fms is not ≥3x below feedback-off %.3fms", fb.OnP50Ms, fb.OffP50Ms)
	check(fb.DriftTrips >= 1, "feedback.drift_trips=%d, want ≥ 1", fb.DriftTrips)

	report.Gates = gateSummaries(failures)
	if err := benchgate.WriteJSON(*out, report); err != nil {
		fmt.Fprintf(stderr, "benchserve: write %s: %v\n", *out, err)
		return exitRuntime
	}
	fmt.Fprintf(stdout, "wrote %s (hits=%d misses=%d evictions=%d singleflight=%d)\n",
		*out, cacheHits, cacheMisses, stats.Evicted, stats.Waits)
	for _, f := range failures {
		fmt.Fprintf(stderr, "FAIL %s\n", f)
	}
	if len(failures) > 0 {
		return exitGate
	}
	fmt.Fprintln(stdout, "benchserve: all gates passed")
	return exitOK
}

// template is one distinct query shape; sql() fills fresh random
// constants so repeated requests share the parameterized plan but not
// the literals.
type template struct {
	text string // with %d verbs for the constants
	args int
	doms []int // domain size per constant
}

func (t template) sql(rng *rand.Rand) string {
	vals := make([]any, t.args)
	for i := range vals {
		vals[i] = rng.Intn(t.doms[i])
	}
	return fmt.Sprintf(t.text, vals...)
}

// templates are the distinct shapes served. The 6-relation chain is
// the Q5-shaped headline workload: its optimization is ms-scale while
// its execution is sub-ms, which is exactly the regime where the plan
// cache's ≥10x hit/miss gap must show. The others prove the cache
// keys templates apart.
var templates = []template{
	{
		text: "select r1.x from r1, r2, r3, r4, r5, r6 " +
			"where r1.x = r2.x and r2.x = r3.x and r3.y = r4.y and r4.x = r5.x and r5.y = r6.y " +
			"and r1.y = %d and r6.x = %d",
		args: 2, doms: []int{6, 9},
	},
	{
		text: "select r1.x from r1, r2, r3, r4, r5 " +
			"where r1.x = r2.x and r2.y = r3.y and r3.x = r4.x and r4.y = r5.y and r2.x = %d",
		args: 1, doms: []int{9},
	},
	{
		text: "select r1.y, count(*) as n from r1 left join r2 on r1.x = r2.x " +
			"where r1.y >= %d group by r1.y",
		args: 1, doms: []int{6},
	},
}

// result is one request's outcome.
type result struct {
	latency time.Duration
	outcome string // "ok", "shed", "deadline", "budget", "error"
	cache   string
	errMsg  string
}

// gen drives one server.
type gen struct {
	base   string
	client *http.Client
	rng    *rand.Rand
}

// send posts one query and classifies the response.
func (g *gen) send(sql, cache string) result {
	start := time.Now()
	body, _ := json.Marshal(map[string]string{"sql": sql, "cache": cache})
	resp, err := g.client.Post(g.base+"/query", "application/json", bytes.NewReader(body))
	lat := time.Since(start)
	if err != nil {
		return result{latency: lat, outcome: "error", errMsg: err.Error()}
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
		var r struct {
			Cache string `json:"cache"`
		}
		json.NewDecoder(resp.Body).Decode(&r)
		return result{latency: lat, outcome: "ok", cache: r.Cache}
	case http.StatusTooManyRequests:
		io.Copy(io.Discard, resp.Body)
		return result{latency: lat, outcome: "shed"}
	case http.StatusGatewayTimeout:
		io.Copy(io.Discard, resp.Body)
		return result{latency: lat, outcome: "deadline"}
	case http.StatusUnprocessableEntity:
		io.Copy(io.Discard, resp.Body)
		return result{latency: lat, outcome: "budget"}
	default:
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return result{latency: lat, outcome: "error", errMsg: fmt.Sprintf("http %d: %s", resp.StatusCode, msg)}
	}
}

// phaseStats summarizes one phase.
type phaseStats struct {
	Name       string  `json:"name"`
	RatePerSec float64 `json:"ratePerSec"`
	Sent       int     `json:"sent"`
	OK         int     `json:"ok"`
	Shed       int     `json:"shed"`
	Deadline   int     `json:"deadline"`
	Errors     int     `json:"errors"`
	P50Ms      float64 `json:"p50Ms"`
	P95Ms      float64 `json:"p95Ms"`
	P99Ms      float64 `json:"p99Ms"`
	Throughput float64 `json:"okPerSec"`
}

func (p phaseStats) String() string {
	return fmt.Sprintf("%-9s rate=%6.1f/s sent=%4d ok=%4d shed=%4d deadline=%d err=%d  p50=%7.3fms p95=%7.3fms p99=%7.3fms",
		p.Name, p.RatePerSec, p.Sent, p.OK, p.Shed, p.Deadline, p.Errors, p.P50Ms, p.P95Ms, p.P99Ms)
}

// openLoop fires requests at a fixed arrival rate for dur, regardless
// of how fast responses come back (arrivals are never gated on
// completions — the defining property of an open-loop generator), then
// waits for the stragglers and summarizes.
func (g *gen) openLoop(name string, ratePerSec float64, dur time.Duration, next func(*rand.Rand) (sql, cache string)) phaseStats {
	interval := time.Duration(float64(time.Second) / ratePerSec)
	if interval <= 0 {
		interval = time.Microsecond
	}
	var mu sync.Mutex
	var results []result
	var wg sync.WaitGroup
	// Each in-flight request owns a private rng seed; the arrival loop
	// owns the shared one.
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	deadline := time.After(dur)
	sent := 0
	start := time.Now()
loop:
	for {
		select {
		case <-deadline:
			break loop
		case <-ticker.C:
			sql, cache := next(g.rng)
			sent++
			wg.Add(1)
			go func() {
				defer wg.Done()
				r := g.send(sql, cache)
				mu.Lock()
				results = append(results, r)
				mu.Unlock()
			}()
		}
	}
	wg.Wait()
	elapsed := time.Since(start)

	stats := phaseStats{Name: name, RatePerSec: ratePerSec, Sent: sent}
	var okLat []time.Duration
	for _, r := range results {
		switch r.outcome {
		case "ok":
			stats.OK++
			okLat = append(okLat, r.latency)
		case "shed":
			stats.Shed++
		case "deadline":
			stats.Deadline++
		default:
			stats.Errors++
		}
	}
	stats.P50Ms = pctMs(okLat, 0.50)
	stats.P95Ms = pctMs(okLat, 0.95)
	stats.P99Ms = pctMs(okLat, 0.99)
	stats.Throughput = float64(stats.OK) / elapsed.Seconds()
	return stats
}

// burst fires n bypass requests simultaneously and summarizes the
// outcomes. With n above the server's admission bound, the excess must
// come back as typed 429s.
func (g *gen) burst(n int) phaseStats {
	results := make([]result, n)
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < n; i++ {
		rng := rand.New(rand.NewSource(int64(1000 + i)))
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = g.send(templates[rng.Intn(len(templates))].sql(rng), "bypass")
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)

	stats := phaseStats{Name: "burst", Sent: n}
	var okLat []time.Duration
	for _, r := range results {
		switch r.outcome {
		case "ok":
			stats.OK++
			okLat = append(okLat, r.latency)
		case "shed":
			stats.Shed++
		case "deadline":
			stats.Deadline++
		default:
			stats.Errors++
		}
	}
	stats.P50Ms = pctMs(okLat, 0.50)
	stats.P95Ms = pctMs(okLat, 0.95)
	stats.P99Ms = pctMs(okLat, 0.99)
	stats.Throughput = float64(stats.OK) / elapsed.Seconds()
	return stats
}

// probeSaturation runs workers closed-loop bypass requests and returns
// the completion rate — the service's approximate capacity on the
// expensive path.
func (g *gen) probeSaturation(workers int, dur time.Duration) float64 {
	var done sync.WaitGroup
	var completed int64
	var mu sync.Mutex
	// A closed channel, not time.After: every worker must observe the
	// stop signal (a timer channel delivers exactly one value).
	stop := make(chan struct{})
	time.AfterFunc(dur, func() { close(stop) })
	start := time.Now()
	for w := 0; w < workers; w++ {
		done.Add(1)
		rng := rand.New(rand.NewSource(int64(100 + w)))
		go func() {
			defer done.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				r := g.send(templates[rng.Intn(len(templates))].sql(rng), "bypass")
				if r.outcome == "ok" {
					mu.Lock()
					completed++
					mu.Unlock()
				}
			}
		}()
	}
	done.Wait()
	rate := float64(completed) / time.Since(start).Seconds()
	if rate < 1 {
		rate = 1
	}
	return rate
}

func pctMs(lat []time.Duration, p float64) float64 {
	if len(lat) == 0 {
		return 0
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	idx := int(p * float64(len(lat)-1))
	return float64(lat[idx].Nanoseconds()) / 1e6
}

// scrapeMetrics fetches and strictly validates the exposition.
func scrapeMetrics(client *http.Client, base string) (map[string]*obs.PromFamily, error) {
	resp, err := client.Get(base + "/metrics")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	return obs.ParseExposition(resp.Body)
}

// promCounter reads one unlabelled counter sample (counters expose as
// name_total).
func promCounter(families map[string]*obs.PromFamily, name string) int64 {
	f, ok := families[name+"_total"]
	if !ok || len(f.Samples) == 0 {
		return 0
	}
	return int64(f.Samples[0].Value)
}

// waitGoroutines polls until the goroutine count drops to max.
func waitGoroutines(max int, timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= max {
			return true
		}
		time.Sleep(20 * time.Millisecond)
	}
	return runtime.NumGoroutine() <= max
}

// feedbackReport summarizes the feedback-recovery phase.
type feedbackReport struct {
	// ReplanByRequest is the 0-based request index whose drift
	// observation triggered the first re-plan (-1 = never).
	ReplanByRequest int     `json:"replanByRequest"`
	FirstMaxQError  float64 `json:"firstMaxQError"`
	// OnP50Ms / OffP50Ms are steady-state (second half) request P50s
	// with feedback on vs off.
	OnP50Ms     float64 `json:"onP50Ms"`
	OffP50Ms    float64 `json:"offP50Ms"`
	SpeedupX    float64 `json:"speedupX"`
	DriftTrips  int64   `json:"driftTrips"`
	Replans     int64   `json:"replans"`
	Corrections int64   `json:"corrections"`
}

// feedbackPhase drives the skewed/correlated workload — zipfian fact
// keys, v a pure function of k — through two in-process services,
// feedback on and off, 12 sequential requests each. The static plan
// misestimates σ(fact) by ~two orders of magnitude; the feedback
// service must observe the drift, re-plan, and settle on a plan fast
// enough to clear the ≥3x steady-state gate.
func feedbackPhase(short bool, workers int, stdout io.Writer) (feedbackReport, error) {
	cfg := datagen.DefaultSkewConfig
	if short {
		// serve-smoke runs under -race; scale the data, not the shape
		// (the zipf share — and so the q-error — is size-independent).
		cfg.FactRows, cfg.DimRows, cfg.TagRows = 5000, 16000, 500
		cfg.JoinDomain, cfg.ADomain = 400, 400
	}
	db := datagen.Skewed(cfg)
	const query = "select fact.k, count(*) as n from fact, d1, d2 " +
		"where fact.j = d1.j and d1.a = d2.a and fact.k = 0 and fact.v = 0 and d2.tag = 0 group by fact.k"
	const runs = 12

	drive := func(feedback bool) ([]time.Duration, []*reorder.Response, *reorder.Service, error) {
		svc, err := reorder.NewService(reorder.ServiceConfig{
			DB:             db,
			Feedback:       feedback,
			ReplanQError:   10,
			ReplanAfter:    2,
			Workers:        workers,
			DefaultTimeout: 30 * time.Second,
		})
		if err != nil {
			return nil, nil, nil, err
		}
		lats := make([]time.Duration, 0, runs)
		resps := make([]*reorder.Response, 0, runs)
		for i := 0; i < runs; i++ {
			start := time.Now()
			resp, err := svc.Query(context.Background(), reorder.Request{SQL: query})
			if err != nil {
				return nil, nil, nil, fmt.Errorf("feedback=%v run %d: %w", feedback, i, err)
			}
			lats = append(lats, time.Since(start))
			resps = append(resps, resp)
		}
		return lats, resps, svc, nil
	}

	offLats, _, _, err := drive(false)
	if err != nil {
		return feedbackReport{}, err
	}
	onLats, onResps, onSvc, err := drive(true)
	if err != nil {
		return feedbackReport{}, err
	}

	rep := feedbackReport{ReplanByRequest: -1, FirstMaxQError: onResps[0].MaxQError}
	for i, r := range onResps {
		if r.Replanned {
			rep.ReplanByRequest = i
			break
		}
	}
	// Steady state: the second half, after the replans have settled.
	rep.OnP50Ms = pctMs(onLats[runs/2:], 0.50)
	rep.OffP50Ms = pctMs(offLats[runs/2:], 0.50)
	if rep.OnP50Ms > 0 {
		rep.SpeedupX = rep.OffP50Ms / rep.OnP50Ms
	}
	snap := onSvc.Observer().Registry.Snapshot()
	rep.DriftTrips = snap.Counters["feedback.drift_trips"]
	rep.Replans = snap.Counters["feedback.replans"]
	rep.Corrections = snap.Counters["feedback.corrections"]
	fmt.Fprintf(stdout,
		"feedback  firstQ=%.1f replanBy=%d on.p50=%.3fms off.p50=%.3fms speedup=%.1fx trips=%d replans=%d corrections=%d\n",
		rep.FirstMaxQError, rep.ReplanByRequest, rep.OnP50Ms, rep.OffP50Ms, rep.SpeedupX,
		rep.DriftTrips, rep.Replans, rep.Corrections)
	return rep, nil
}

// serveReport is BENCH_serve.json.
type serveReport struct {
	GoMaxProcs   int                      `json:"gomaxprocs"`
	GoVersion    string                   `json:"goVersion"`
	Templates    int                      `json:"templates"`
	SatRate      float64                  `json:"saturationPerSec"`
	Seeds        []benchgate.SeedBaseline `json:"seedBaselines"`
	Phases       []phaseStats             `json:"phases"`
	CacheHits    int64                    `json:"plancacheHits"`
	CacheMisses  int64                    `json:"plancacheMisses"`
	Evictions    int64                    `json:"plancacheEvictions"`
	Singleflight int64                    `json:"plancacheSingleflightWaits"`
	Feedback     feedbackReport           `json:"feedback"`
	Gates        []string                 `json:"gates"`
}

// seedBaselines are the first measurements on the machine this
// benchmark was introduced on, kept for drift comparison.
var seedBaselines = []benchgate.SeedBaseline{
	{Name: "serveHitP50", MsPerOp: 11.7, Note: "PR8 seed: cache-hit P50 at 40/s on the 6-relation chain (1-core container)"},
	{Name: "serveMissP50", MsPerOp: 1563.2, Note: "PR8 seed: bypass P50 at 2/s (full optimization per request, 1-core container)"},
	{Name: "serveFeedbackOnP50", MsPerOp: 45.6, Note: "PR10 seed: skewed-workload steady-state P50 with feedback-driven re-planning"},
	{Name: "serveFeedbackOffP50", MsPerOp: 266.6, Note: "PR10 seed: same workload pinned to the static misestimated plan"},
}

// gateSummaries renders the gate outcomes for the report.
func gateSummaries(failures []string) []string {
	if len(failures) == 0 {
		return []string{"ok: hit P50 ≥10x below miss P50", "ok: one optimization per template", "ok: typed outcomes only under 2x saturation", "ok: burst beyond admission bound shed typed 429s", "ok: goroutines drained", "ok: feedback replanned within 5 requests and holds ≥3x steady-state P50 on the skewed workload"}
	}
	out := make([]string, len(failures))
	for i, f := range failures {
		out[i] = "fail: " + f
	}
	return out
}

// demoDB mirrors reorderd -demo: r1..r7, 50 rows, int x (0..8) and
// y (0..5).
func demoDB() reorder.Database {
	db := reorder.Database{}
	for i := 1; i <= 7; i++ {
		name := fmt.Sprintf("r%d", i)
		b := relation.NewBuilder(name, "x", "y")
		for j := 0; j < 50; j++ {
			b.Row(value.NewInt(int64(j%9)), value.NewInt(int64(j%6)))
		}
		db[name] = b.Relation()
	}
	return db
}
