package reorder

import (
	"context"
	"strings"
	"testing"

	"repro/internal/datagen"
	"repro/internal/plan"
)

// TestExplainAnalyzeSupplier drives the acceptance scenario: the
// Example 1.1 supplier workload run through ExplainAnalyze must carry
// actual row counts on every operator, optimizer phase timings and
// rule-firing counters, and render them all.
func TestExplainAnalyzeSupplier(t *testing.T) {
	db := datagen.Supplier(datagen.DefaultSupplierConfig)
	q := datagen.SupplierQuery()
	rep, err := ExplainAnalyze(q, db)
	if err != nil {
		t.Fatal(err)
	}
	want, err := Execute(q, db)
	if err != nil {
		t.Fatal(err)
	}
	if rep.RowsOut != want.Len() {
		t.Errorf("RowsOut = %d, plain execution returns %d", rep.RowsOut, want.Len())
	}

	node, ann := rep.Plan()
	if node == nil {
		t.Fatal("report has no plan")
	}
	plan.Walk(node, func(n plan.Node) {
		a := ann[n]
		if a == nil {
			t.Errorf("operator %s has no annotation", n)
			return
		}
		if s, ok := n.(*plan.Scan); ok {
			if a.Rows != db[s.Rel].Len() {
				t.Errorf("scan %s: actual rows %d, relation has %d", s.Rel, a.Rows, db[s.Rel].Len())
			}
			if a.EstRows != float64(db[s.Rel].Len()) {
				t.Errorf("scan %s: estimate %.0f, relation has %d", s.Rel, a.EstRows, db[s.Rel].Len())
			}
		}
	})
	if ann[node].Rows != rep.RowsOut {
		t.Errorf("root annotation %d rows, RowsOut %d", ann[node].Rows, rep.RowsOut)
	}

	// The default memo engine reports simplify/explore/cost (the
	// saturation path would report simplify/saturate/cost/rank).
	if len(rep.Phases) != 3 {
		t.Errorf("phases = %v, want simplify/explore/cost", rep.Phases)
	}
	if len(rep.RuleFirings) == 0 {
		t.Error("supplier query enumerates alternatives but no rule firings recorded")
	}
	if rep.Metrics.Counters["optimizer.plans_enumerated"] != int64(rep.Considered) {
		t.Errorf("plans_enumerated counter %d, Considered %d",
			rep.Metrics.Counters["optimizer.plans_enumerated"], rep.Considered)
	}
	if rep.Metrics.Counters["executor.ops"] != int64(plan.CountNodes(node)) {
		t.Errorf("executor.ops = %d, plan has %d nodes",
			rep.Metrics.Counters["executor.ops"], plan.CountNodes(node))
	}

	out := rep.String()
	for _, want := range []string{"EXPLAIN ANALYZE", "actual rows=", "optimizer phases:", "explore", "counters:", "executor.op.scan"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered report missing %q:\n%s", want, out)
		}
	}
	if tr := rep.Trace(); !strings.Contains(tr, "optimize") || !strings.Contains(tr, "execute") {
		t.Errorf("trace missing spans:\n%s", tr)
	}
}

// TestExplainAnalyzeJSONRoundTrip: the machine-readable dump must
// reconstruct the same annotated plan — same operators, same actual
// and estimated rows, same counters — and render identically.
func TestExplainAnalyzeJSONRoundTrip(t *testing.T) {
	db := datagen.Supplier(datagen.DefaultSupplierConfig)
	rep, err := ExplainAnalyze(datagen.SupplierQuery(), db)
	if err != nil {
		t.Fatal(err)
	}
	data, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeAnalyzeReport(data)
	if err != nil {
		t.Fatal(err)
	}
	n1, a1 := rep.Plan()
	n2, a2 := back.Plan()
	if n1.String() != n2.String() {
		t.Fatalf("plan changed across round trip:\n%s\n%s", n1, n2)
	}
	// Pair the trees node by node (same pre-order walk) and compare
	// annotations.
	var nodes1, nodes2 []plan.Node
	plan.Walk(n1, func(n plan.Node) { nodes1 = append(nodes1, n) })
	plan.Walk(n2, func(n plan.Node) { nodes2 = append(nodes2, n) })
	if len(nodes1) != len(nodes2) {
		t.Fatalf("node counts differ: %d vs %d", len(nodes1), len(nodes2))
	}
	for i := range nodes1 {
		x, y := a1[nodes1[i]], a2[nodes2[i]]
		if x == nil || y == nil {
			t.Fatalf("node %d lost its annotation (%v vs %v)", i, x, y)
		}
		if x.Rows != y.Rows || x.EstRows != y.EstRows || x.Elapsed != y.Elapsed {
			t.Errorf("node %d annotation changed: %+v vs %+v", i, x, y)
		}
		for k, v := range x.Extra {
			if y.Extra[k] != v {
				t.Errorf("node %d extra %q: %d vs %d", i, k, v, y.Extra[k])
			}
		}
	}
	if back.String() != rep.String() {
		t.Error("rendered report differs after round trip")
	}
	if back.Trace() != rep.Trace() {
		t.Error("rendered trace differs after round trip")
	}
	if back.Metrics.Counters["executor.rows_out"] != rep.Metrics.Counters["executor.rows_out"] {
		t.Error("counters lost in round trip")
	}
}

// TestExplainAnalyzeIsolation: two concurrent ExplainAnalyze calls use
// private registries, so their executor.ops counters reflect only
// their own plan.
func TestExplainAnalyzeIsolation(t *testing.T) {
	db := tinyDB()
	q, err := Parse("select t.a, s.c from t left outer join s on t.a = s.a", db)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan *AnalyzeReport, 2)
	for i := 0; i < 2; i++ {
		go func() {
			rep, err := ExplainAnalyze(q, db)
			if err != nil {
				t.Error(err)
				done <- nil
				return
			}
			done <- rep
		}()
	}
	for i := 0; i < 2; i++ {
		rep := <-done
		if rep == nil {
			continue
		}
		node, _ := rep.Plan()
		if got, want := rep.Metrics.Counters["executor.ops"], int64(plan.CountNodes(node)); got != want {
			t.Errorf("executor.ops = %d, want %d (registry leaked across runs)", got, want)
		}
	}
}

// TestExplainAnalyzeBudgetDegradedStillExecutes pins the one-envelope
// semantics: when the exprs budget trips during optimization, the run
// degrades — it must still execute the best-effort plan (the sticky
// exprs trip is not an execution error) and tag the report.
func TestExplainAnalyzeBudgetDegradedStillExecutes(t *testing.T) {
	db := datagen.Supplier(datagen.DefaultSupplierConfig)
	q := datagen.SupplierQuery()
	rep, err := ExplainAnalyzeBudget(context.Background(), q, db, 1, Limits{MaxExprs: 5})
	if err != nil {
		t.Fatalf("degraded run must execute, not fail: %v", err)
	}
	if rep.Degraded == "" {
		t.Fatal("MaxExprs=5 run did not report degradation")
	}
	want, err := Execute(q, db)
	if err != nil {
		t.Fatal(err)
	}
	if rep.RowsOut != want.Len() {
		t.Errorf("degraded plan returned %d rows, want %d", rep.RowsOut, want.Len())
	}
	if !strings.Contains(rep.String(), "degraded:") {
		t.Error("rendered report is missing the degraded: line")
	}
}
