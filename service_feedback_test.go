package reorder

import (
	"context"
	"testing"
	"time"

	"repro/internal/datagen"
	"repro/internal/guard"
)

// skewQuery is the workload whose static estimate is catastrophically
// wrong: fact.k is zipfian (uniformity broken) and fact.v is a pure
// function of fact.k (independence broken), so σ(fact) is estimated
// ~two orders of magnitude low and the static optimizer picks the
// wrong join order.
const skewQuery = "select fact.k, count(*) as n from fact, d1, d2 " +
	"where fact.j = d1.j and d1.a = d2.a and fact.k = 0 and fact.v = 0 and d2.tag = 0 group by fact.k"

// testSkewConfig is a scaled-down DefaultSkewConfig for unit-test
// runtimes; it preserves the q-error (zipf share vs uniform share is
// size-independent).
var testSkewConfig = datagen.SkewConfig{
	FactRows: 4000, DimRows: 8000, TagRows: 400,
	Keys: 100, ZipfS: 1.2, CorrMod: 10,
	JoinDomain: 400, ADomain: 400, TagDomain: 10, Seed: 7,
}

func feedbackService(t *testing.T, feedback bool, replanAfter int) *Service {
	t.Helper()
	svc, err := NewService(ServiceConfig{
		DB:             datagen.Skewed(testSkewConfig),
		Feedback:       feedback,
		ReplanQError:   10,
		ReplanAfter:    replanAfter,
		DefaultTimeout: 30 * time.Second,
		SpillDir:       t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	return svc
}

// TestServiceFeedbackConvergence is the feedback loop end to end: the
// first execution's q-error trips the drift detector, a re-plan lands
// within 5 requests, and by the end of the run the corrected plan's
// estimates hold (q-error back under the threshold) with every
// transition visible in the counters.
func TestServiceFeedbackConvergence(t *testing.T) {
	svc := feedbackService(t, true, 2)
	ctx := context.Background()
	var resps []*Response
	for i := 0; i < 12; i++ {
		resp, err := svc.Query(ctx, Request{SQL: skewQuery})
		if err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
		resps = append(resps, resp)
	}
	if resps[0].MaxQError < 10 {
		t.Fatalf("first run MaxQError = %.1f, want ≥ 10 (the workload must misestimate)", resps[0].MaxQError)
	}
	replanBy := -1
	for i, r := range resps {
		if r.Replanned {
			replanBy = i
			break
		}
	}
	if replanBy < 0 || replanBy > 4 {
		t.Fatalf("first replan at request %d, want within 5 requests", replanBy)
	}
	last := resps[len(resps)-1]
	if last.MaxQError >= 10 {
		t.Fatalf("steady-state MaxQError = %.1f, want < 10 (corrected plan's estimates must hold)", last.MaxQError)
	}
	if last.PlanKey == resps[0].PlanKey {
		t.Fatal("re-planning never changed the plan")
	}
	if last.ReplanGen == 0 {
		t.Fatal("ReplanGen = 0 after replans")
	}
	if last.FeedbackCorrections == 0 {
		t.Fatal("steady-state plan reports no feedback corrections")
	}
	// All results identical across plan generations.
	for i, r := range resps[1:] {
		if len(r.Rows) != len(resps[0].Rows) {
			t.Fatalf("run %d returned %d rows, run 0 returned %d", i+1, len(r.Rows), len(resps[0].Rows))
		}
	}
	snap := svc.Observer().Registry.Snapshot()
	for _, c := range []string{"feedback.corrections", "feedback.drift_trips", "feedback.replans", "plancache.refreshes"} {
		if snap.Counters[c] == 0 {
			t.Fatalf("counter %s = 0, want > 0", c)
		}
	}
	// The flight recorder carries the feedback counters per request.
	recs := svc.Observer().Flight.Snapshot()
	found := false
	for _, rec := range recs {
		if rec.Counters["feedback.replans"] > 0 {
			found = true
		}
	}
	if !found {
		t.Fatal("no flight record carries feedback.replans")
	}
}

// TestServiceFeedbackOffStable: with feedback off (the default) the
// serving path never replans, reports no feedback metadata, and
// returns the same rows the feedback-on service converges to.
func TestServiceFeedbackOffStable(t *testing.T) {
	off := feedbackService(t, false, 2)
	on := feedbackService(t, true, 2)
	ctx := context.Background()
	var offResp, onResp *Response
	for i := 0; i < 6; i++ {
		var err error
		if offResp, err = off.Query(ctx, Request{SQL: skewQuery}); err != nil {
			t.Fatal(err)
		}
		if onResp, err = on.Query(ctx, Request{SQL: skewQuery}); err != nil {
			t.Fatal(err)
		}
	}
	if offResp.MaxQError != 0 || offResp.Replanned || offResp.ReplanGen != 0 || offResp.FeedbackCorrections != 0 {
		t.Fatalf("feedback-off response carries feedback metadata: %+v", offResp)
	}
	if len(offResp.Rows) != len(onResp.Rows) {
		t.Fatalf("feedback changed results: off %d rows, on %d rows", len(offResp.Rows), len(onResp.Rows))
	}
	snap := off.Observer().Registry.Snapshot()
	for _, c := range []string{"feedback.corrections", "feedback.replans", "feedback.drift_trips", "plancache.refreshes"} {
		if snap.Counters[c] != 0 {
			t.Fatalf("feedback-off counter %s = %d, want 0", c, snap.Counters[c])
		}
	}
}

// TestServiceFeedbackFaultPoints: feedback.record and feedback.lookup
// armed to error surface as typed request failures; an injected
// plancache.replan fault is swallowed (the request already has its
// results), counted on feedback.replan_errors, and the old plan keeps
// serving — after the fault clears, the replan goes through.
func TestServiceFeedbackFaultPoints(t *testing.T) {
	defer guard.Clear()

	t.Run("lookup", func(t *testing.T) {
		svc := feedbackService(t, true, 2)
		guard.InjectError(guard.PointFeedbackLookup)
		defer guard.Clear()
		_, err := svc.Query(context.Background(), Request{SQL: skewQuery})
		se := asServeError(t, err)
		if se.Code != "injected" {
			t.Fatalf("code = %s, want injected", se.Code)
		}
	})

	t.Run("record", func(t *testing.T) {
		svc := feedbackService(t, true, 2)
		guard.InjectError(guard.PointFeedbackRecord)
		defer guard.Clear()
		_, err := svc.Query(context.Background(), Request{SQL: skewQuery})
		se := asServeError(t, err)
		if se.Code != "injected" {
			t.Fatalf("code = %s, want injected", se.Code)
		}
	})

	t.Run("replan", func(t *testing.T) {
		svc := feedbackService(t, true, 1)
		ctx := context.Background()
		guard.InjectError(guard.PointCacheReplan)
		defer guard.Clear()
		// First run drifts and trips an (injected-faulted) replan; the
		// request itself must still succeed with the old plan's rows.
		resp, err := svc.Query(ctx, Request{SQL: skewQuery})
		if err != nil {
			t.Fatalf("request failed on a replan fault: %v", err)
		}
		if resp.Replanned || resp.ReplanGen != 0 {
			t.Fatalf("replan reported despite injected fault: %+v", resp)
		}
		if got := svc.Observer().Registry.Snapshot().Counters["feedback.replan_errors"]; got == 0 {
			t.Fatal("feedback.replan_errors = 0, want > 0")
		}
		firstPlan := resp.PlanKey
		guard.Clear()
		// With the fault cleared the next drifted run replans for real.
		var replanned bool
		for i := 0; i < 6 && !replanned; i++ {
			resp, err = svc.Query(ctx, Request{SQL: skewQuery})
			if err != nil {
				t.Fatal(err)
			}
			replanned = resp.Replanned
		}
		if !replanned {
			t.Fatal("no replan after fault cleared")
		}
		resp, err = svc.Query(ctx, Request{SQL: skewQuery})
		if err != nil {
			t.Fatal(err)
		}
		if resp.PlanKey == firstPlan {
			t.Fatal("plan unchanged after post-fault replan")
		}
	})
}

// TestServiceCacheDebug: /debug/cache's payload carries per-template
// feedback state — last q-error, corrections, replan generation.
func TestServiceCacheDebug(t *testing.T) {
	svc := feedbackService(t, true, 2)
	ctx := context.Background()
	for i := 0; i < 6; i++ {
		if _, err := svc.Query(ctx, Request{SQL: skewQuery}); err != nil {
			t.Fatal(err)
		}
	}
	d := svc.CacheDebug()
	if len(d.Plans) != 1 {
		t.Fatalf("CacheDebug plans = %d, want 1", len(d.Plans))
	}
	p := d.Plans[0]
	if p.Key == "" || p.PlanKey == "" {
		t.Fatalf("missing keys: %+v", p)
	}
	if p.LastQError <= 0 {
		t.Fatalf("LastQError = %v, want > 0", p.LastQError)
	}
	if p.Corrections == 0 {
		t.Fatal("Corrections = 0, want > 0")
	}
	if p.ReplanGen == 0 {
		t.Fatal("ReplanGen = 0, want > 0 after drift")
	}
	if d.Stats.Refreshes == 0 {
		t.Fatal("Stats.Refreshes = 0, want > 0")
	}
}

func asServeError(t *testing.T, err error) *ServeError {
	t.Helper()
	if err == nil {
		t.Fatal("expected error")
	}
	se, ok := err.(*ServeError)
	if !ok {
		t.Fatalf("error %T is not *ServeError: %v", err, err)
	}
	return se
}
